//! Structured scheduler trace stream.
//!
//! Every layer of the stack (the GPU engine, the simulation loop, the
//! BLESS driver) can emit typed [`TraceEvent`]s in *virtual* time through a
//! [`TraceSink`]. With no sink installed the stream costs one branch per
//! potential emission point — no allocation, no formatting, no state — so
//! simulation results are bit-identical with tracing on or off.
//!
//! Three sinks are provided:
//!
//! * [`BufferSink`] — an unbounded in-memory buffer with a shared handle,
//!   for validators, exporters, and tests.
//! * [`RingSink`] — a bounded ring keeping only the most recent events
//!   (flight-recorder style), for long runs where only the tail matters.
//! * [`JsonlSink`] — streams one JSON object per line to any
//!   [`std::io::Write`], for offline analysis of unbounded runs.
//!
//! Identifiers are plain integers so this crate stays free of upward
//! dependencies: `app` is the tenant index, `kernel` the kernel index
//! within the tenant's profile, `queue`/`ctx` the engine's queue/context
//! ids, and `seq` a unique per-launch sequence number (a retried kernel
//! gets a fresh `seq`; `seq` is never reused within one simulation).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::time::SimTime;

/// Per-entry plan of a squad, attached to [`TraceEvent::SquadFormed`].
///
/// `kernels` are the contiguous profile indices
/// `[first_kernel, first_kernel + count)`; the first `split_at` of them are
/// planned for the SM-restricted context, the rest for the unrestricted
/// one (§4.5 semi-spatial sharing).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSquadEntry {
    /// Tenant index.
    pub app: u32,
    /// First kernel index of the entry.
    pub first_kernel: u32,
    /// Number of kernels in the entry.
    pub count: u32,
    /// Number of leading kernels routed to the restricted context.
    pub split_at: u32,
    /// SM cap set on the restricted context (0 when the entry runs
    /// unrestricted).
    pub sm_cap: u32,
    /// Share mode of the entry: 0 = semi-spatial, 1 = strict-spatial,
    /// 2 = unrestricted (no cap).
    pub mode: u8,
}

/// One structured scheduler event in virtual time.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A kernel was launched from the host into a device queue.
    KernelLaunch {
        /// Launch instant (host side).
        at: SimTime,
        /// Unique per-launch sequence number.
        seq: u64,
        /// Tenant index (from the launch tag).
        app: u32,
        /// Kernel index within the tenant's profile.
        kernel: u32,
        /// Destination device queue.
        queue: u32,
        /// Whether the destination context is SM-restricted (MPS
        /// affinity).
        restricted: bool,
    },
    /// A kernel reached the head of its queue and began executing.
    KernelStart {
        /// Start instant.
        at: SimTime,
        /// Launch sequence number.
        seq: u64,
        /// Device queue.
        queue: u32,
    },
    /// A running compute kernel's SM allocation changed.
    SmAlloc {
        /// Reallocation instant.
        at: SimTime,
        /// Launch sequence number.
        seq: u64,
        /// New SM share (0 when starved).
        sms: f64,
    },
    /// A kernel finished.
    KernelComplete {
        /// Completion instant.
        at: SimTime,
        /// Launch sequence number.
        seq: u64,
        /// Device queue.
        queue: u32,
    },
    /// A kernel was killed by an injected context crash.
    KernelFailed {
        /// Failure instant.
        at: SimTime,
        /// Launch sequence number.
        seq: u64,
        /// Device queue.
        queue: u32,
    },
    /// An injected MPS context crash fired.
    CrashInjected {
        /// Crash instant.
        at: SimTime,
        /// Victim tenant.
        app: u32,
        /// Number of kernels killed.
        casualties: u32,
    },
    /// An injected DMA stall window opened (`onset`) or closed.
    DmaStall {
        /// Transition instant.
        at: SimTime,
        /// Bandwidth divisor of the window.
        factor: f64,
        /// True at window start, false at recovery.
        onset: bool,
    },
    /// An SM-affinity cap was (re)set on a context.
    PartitionSet {
        /// Instant of the cap change.
        at: SimTime,
        /// Context id.
        ctx: u32,
        /// New cap in SMs.
        sm_cap: u32,
    },
    /// A context's SM restriction was released (squad retired).
    PartitionReleased {
        /// Release instant.
        at: SimTime,
        /// Context id.
        ctx: u32,
    },
    /// A client request arrived at the host scheduler.
    RequestArrival {
        /// Arrival instant.
        at: SimTime,
        /// Tenant index.
        app: u32,
        /// Per-tenant request sequence number.
        req: u64,
    },
    /// A client request completed (all its kernels finished).
    RequestDone {
        /// Completion instant.
        at: SimTime,
        /// Tenant index.
        app: u32,
        /// Per-tenant request sequence number.
        req: u64,
    },
    /// A kernel squad was formed and is about to launch (§4.3).
    SquadFormed {
        /// Formation instant.
        at: SimTime,
        /// Squad id (0-based, monotonically increasing).
        id: u64,
        /// Whether the chosen configuration is spatial (SP).
        spatial: bool,
        /// The split ratio `c` in effect (fraction of kernels routed to
        /// the restricted context under semi-spatial sharing).
        split_ratio: f64,
        /// Per-tenant entry plans.
        entries: Vec<TraceSquadEntry>,
    },
    /// The configuration determiner chose a config for a squad (§4.4).
    ConfigChosen {
        /// Decision instant.
        at: SimTime,
        /// Squad id the decision applies to.
        squad: u64,
        /// Whether the spatial configuration won.
        spatial: bool,
        /// Predicted squad duration, in nanoseconds (0 when the
        /// determiner was bypassed).
        predicted_ns: u64,
        /// Number of candidate configurations evaluated.
        evaluated: u32,
    },
    /// A squad fully retired (every launched kernel completed).
    SquadRetired {
        /// Retirement instant.
        at: SimTime,
        /// Squad id.
        id: u64,
    },
    /// A tenant moved along the degradation ladder (§ fault model).
    ModeShift {
        /// Transition instant.
        at: SimTime,
        /// Tenant index.
        app: u32,
        /// Previous mode: 0 = semi-spatial, 1 = strict-spatial,
        /// 2 = temporal.
        from: u8,
        /// New mode (same encoding).
        to: u8,
    },
    /// A crash casualty was re-submitted to its original queue.
    RetrySubmitted {
        /// Re-submission instant.
        at: SimTime,
        /// Tenant index.
        app: u32,
        /// Kernel index within the tenant's profile.
        kernel: u32,
    },
    /// A fleet device died permanently or froze transiently (chaos runner).
    DeviceFailed {
        /// Fault instant.
        at: SimTime,
        /// Fleet device index.
        gpu: u32,
        /// True for a permanent failure, false for a transient hang.
        permanent: bool,
    },
    /// A tenant's pending work was drained off a quiesced device.
    TenantEvacuated {
        /// Evacuation instant (the fault barrier).
        at: SimTime,
        /// Source device.
        gpu: u32,
        /// Tenant index (fleet-level).
        app: u32,
        /// 1 when a request was in flight at the barrier (its squads were
        /// abandoned with typed errors), else 0.
        in_flight: u32,
        /// Requests preserved from the FIFO queue (excluding undelivered
        /// future arrivals).
        queued: u32,
    },
    /// An evacuated tenant resumed service on a device.
    TenantRestored {
        /// First instant the tenant's checkpointed work is serviceable.
        at: SimTime,
        /// Target device (equals the source for a hang ride-through).
        gpu: u32,
        /// Tenant index (fleet-level).
        app: u32,
        /// Recovery time: `at` minus the fault instant, in nanoseconds.
        recovery_ns: u64,
    },
    /// An evacuated tenant could not be re-placed.
    MigrationFailed {
        /// Decision instant.
        at: SimTime,
        /// Tenant index (fleet-level).
        app: u32,
        /// Typed reason code: 0 = no surviving GPU has capacity,
        /// 1 = source device already dead.
        reason: u8,
    },
    /// The serving front-end admitted an offered arrival (DESIGN.md §5l).
    RequestAdmitted {
        /// Arrival instant (virtual time the client offered the request).
        at: SimTime,
        /// Tenant index.
        app: u32,
        /// Driver-level request id (dense over *admitted* requests; the
        /// id the matching [`TraceEvent::RequestArrival`] will carry).
        req: u64,
        /// Per-tenant offered sequence number (dense over admitted *and*
        /// shed arrivals — the conservation key).
        seq: u64,
    },
    /// The serving front-end shed an offered arrival (typed, accounted —
    /// never a silent drop).
    RequestShed {
        /// Arrival instant of the shed request.
        at: SimTime,
        /// Tenant index.
        app: u32,
        /// Per-tenant offered sequence number (same numbering as
        /// [`TraceEvent::RequestAdmitted::seq`]).
        seq: u64,
        /// Typed reason code: 0 = token-bucket rate limit,
        /// 1 = backpressure (outstanding-queue bound exceeded).
        reason: u8,
    },
    /// A tenant's outstanding-queue bound was crossed upward: subsequent
    /// arrivals shed with reason 1 until [`TraceEvent::BackpressureOff`].
    BackpressureOn {
        /// Instant of the crossing (the first shed arrival's time).
        at: SimTime,
        /// Tenant index.
        app: u32,
        /// Outstanding admitted-but-incomplete requests at the crossing.
        outstanding: u32,
    },
    /// A tenant's outstanding queue drained back under its bound.
    BackpressureOff {
        /// Instant the bound was re-satisfied (the next admitted
        /// arrival's time).
        at: SimTime,
        /// Tenant index.
        app: u32,
    },
}

impl TraceEvent {
    /// The virtual-time instant of the event.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::KernelLaunch { at, .. }
            | TraceEvent::KernelStart { at, .. }
            | TraceEvent::SmAlloc { at, .. }
            | TraceEvent::KernelComplete { at, .. }
            | TraceEvent::KernelFailed { at, .. }
            | TraceEvent::CrashInjected { at, .. }
            | TraceEvent::DmaStall { at, .. }
            | TraceEvent::PartitionSet { at, .. }
            | TraceEvent::PartitionReleased { at, .. }
            | TraceEvent::RequestArrival { at, .. }
            | TraceEvent::RequestDone { at, .. }
            | TraceEvent::SquadFormed { at, .. }
            | TraceEvent::ConfigChosen { at, .. }
            | TraceEvent::SquadRetired { at, .. }
            | TraceEvent::ModeShift { at, .. }
            | TraceEvent::RetrySubmitted { at, .. }
            | TraceEvent::DeviceFailed { at, .. }
            | TraceEvent::TenantEvacuated { at, .. }
            | TraceEvent::TenantRestored { at, .. }
            | TraceEvent::MigrationFailed { at, .. }
            | TraceEvent::RequestAdmitted { at, .. }
            | TraceEvent::RequestShed { at, .. }
            | TraceEvent::BackpressureOn { at, .. }
            | TraceEvent::BackpressureOff { at, .. } => *at,
        }
    }

    /// Short machine-readable name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::KernelLaunch { .. } => "kernel_launch",
            TraceEvent::KernelStart { .. } => "kernel_start",
            TraceEvent::SmAlloc { .. } => "sm_alloc",
            TraceEvent::KernelComplete { .. } => "kernel_complete",
            TraceEvent::KernelFailed { .. } => "kernel_failed",
            TraceEvent::CrashInjected { .. } => "crash_injected",
            TraceEvent::DmaStall { .. } => "dma_stall",
            TraceEvent::PartitionSet { .. } => "partition_set",
            TraceEvent::PartitionReleased { .. } => "partition_released",
            TraceEvent::RequestArrival { .. } => "request_arrival",
            TraceEvent::RequestDone { .. } => "request_done",
            TraceEvent::SquadFormed { .. } => "squad_formed",
            TraceEvent::ConfigChosen { .. } => "config_chosen",
            TraceEvent::SquadRetired { .. } => "squad_retired",
            TraceEvent::ModeShift { .. } => "mode_shift",
            TraceEvent::RetrySubmitted { .. } => "retry_submitted",
            TraceEvent::DeviceFailed { .. } => "device_failed",
            TraceEvent::TenantEvacuated { .. } => "tenant_evacuated",
            TraceEvent::TenantRestored { .. } => "tenant_restored",
            TraceEvent::MigrationFailed { .. } => "migration_failed",
            TraceEvent::RequestAdmitted { .. } => "request_admitted",
            TraceEvent::RequestShed { .. } => "request_shed",
            TraceEvent::BackpressureOn { .. } => "backpressure_on",
            TraceEvent::BackpressureOff { .. } => "backpressure_off",
        }
    }

    /// Appends the event as one JSON object (no trailing newline) to
    /// `out`. The encoding is hand-rolled (this workspace vendors no
    /// serde) and stable: field order is fixed, floats use Rust's
    /// shortest-round-trip formatting, so identical event streams encode
    /// to identical bytes.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"ev\":\"{}\",\"at\":{}",
            self.kind(),
            self.at().as_nanos()
        );
        match self {
            TraceEvent::KernelLaunch {
                seq,
                app,
                kernel,
                queue,
                restricted,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"seq\":{seq},\"app\":{app},\"kernel\":{kernel},\"queue\":{queue},\"restricted\":{restricted}"
                );
            }
            TraceEvent::KernelStart { seq, queue, .. }
            | TraceEvent::KernelComplete { seq, queue, .. }
            | TraceEvent::KernelFailed { seq, queue, .. } => {
                let _ = write!(out, ",\"seq\":{seq},\"queue\":{queue}");
            }
            TraceEvent::SmAlloc { seq, sms, .. } => {
                let _ = write!(out, ",\"seq\":{seq},\"sms\":{sms}");
            }
            TraceEvent::CrashInjected {
                app, casualties, ..
            } => {
                let _ = write!(out, ",\"app\":{app},\"casualties\":{casualties}");
            }
            TraceEvent::DmaStall { factor, onset, .. } => {
                let _ = write!(out, ",\"factor\":{factor},\"onset\":{onset}");
            }
            TraceEvent::PartitionSet { ctx, sm_cap, .. } => {
                let _ = write!(out, ",\"ctx\":{ctx},\"sm_cap\":{sm_cap}");
            }
            TraceEvent::PartitionReleased { ctx, .. } => {
                let _ = write!(out, ",\"ctx\":{ctx}");
            }
            TraceEvent::RequestArrival { app, req, .. }
            | TraceEvent::RequestDone { app, req, .. } => {
                let _ = write!(out, ",\"app\":{app},\"req\":{req}");
            }
            TraceEvent::SquadFormed {
                id,
                spatial,
                split_ratio,
                entries,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"id\":{id},\"spatial\":{spatial},\"split_ratio\":{split_ratio},\"entries\":["
                );
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"app\":{},\"first_kernel\":{},\"count\":{},\"split_at\":{},\"sm_cap\":{},\"mode\":{}}}",
                        e.app, e.first_kernel, e.count, e.split_at, e.sm_cap, e.mode
                    );
                }
                out.push(']');
            }
            TraceEvent::ConfigChosen {
                squad,
                spatial,
                predicted_ns,
                evaluated,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"squad\":{squad},\"spatial\":{spatial},\"predicted_ns\":{predicted_ns},\"evaluated\":{evaluated}"
                );
            }
            TraceEvent::SquadRetired { id, .. } => {
                let _ = write!(out, ",\"id\":{id}");
            }
            TraceEvent::ModeShift { app, from, to, .. } => {
                let _ = write!(out, ",\"app\":{app},\"from\":{from},\"to\":{to}");
            }
            TraceEvent::RetrySubmitted { app, kernel, .. } => {
                let _ = write!(out, ",\"app\":{app},\"kernel\":{kernel}");
            }
            TraceEvent::DeviceFailed { gpu, permanent, .. } => {
                let _ = write!(out, ",\"gpu\":{gpu},\"permanent\":{permanent}");
            }
            TraceEvent::TenantEvacuated {
                gpu,
                app,
                in_flight,
                queued,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"gpu\":{gpu},\"app\":{app},\"in_flight\":{in_flight},\"queued\":{queued}"
                );
            }
            TraceEvent::TenantRestored {
                gpu,
                app,
                recovery_ns,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"gpu\":{gpu},\"app\":{app},\"recovery_ns\":{recovery_ns}"
                );
            }
            TraceEvent::MigrationFailed { app, reason, .. } => {
                let _ = write!(out, ",\"app\":{app},\"reason\":{reason}");
            }
            TraceEvent::RequestAdmitted { app, req, seq, .. } => {
                let _ = write!(out, ",\"app\":{app},\"req\":{req},\"seq\":{seq}");
            }
            TraceEvent::RequestShed {
                app, seq, reason, ..
            } => {
                let _ = write!(out, ",\"app\":{app},\"seq\":{seq},\"reason\":{reason}");
            }
            TraceEvent::BackpressureOn {
                app, outstanding, ..
            } => {
                let _ = write!(out, ",\"app\":{app},\"outstanding\":{outstanding}");
            }
            TraceEvent::BackpressureOff { app, .. } => {
                let _ = write!(out, ",\"app\":{app}");
            }
        }
        out.push('}');
    }

    /// The event as a standalone JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_json(&mut s);
        s
    }
}

/// Recovers a mutex guard even if another holder panicked: the payload is
/// plain event data, never left in a half-updated state, so the poison
/// flag carries no information here.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Receiver of a structured trace stream.
///
/// Sinks must not influence the simulation: `record` takes the event by
/// reference and the engine never observes a sink's state.
///
/// Sinks are `Send` so an engine holding one can be moved to (or driven
/// from) a worker thread — the lane engine shards one GPU across scoped
/// threads and each lane carries its own sink.
pub trait TraceSink: Send {
    /// Records one event. Events arrive in non-decreasing virtual time.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// Unbounded in-memory sink with a shared handle.
///
/// Cloning is shallow (the clones share one buffer), so the idiom is to
/// keep one handle and install the other on the GPU:
///
/// ```
/// use sim_core::trace::{BufferSink, TraceSink};
/// let buf = BufferSink::new();
/// let mut installed: Box<dyn TraceSink> = Box::new(buf.clone());
/// // ... the engine records through `installed` ...
/// let events = buf.take();
/// assert!(events.is_empty());
/// ```
#[derive(Clone, Default)]
pub struct BufferSink {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
}

impl BufferSink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        lock_unpoisoned(&self.inner).is_empty()
    }

    /// Removes and returns all recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *lock_unpoisoned(&self.inner))
    }

    /// Removes all recorded events into `out` (appending), reusing `out`'s
    /// capacity instead of allocating a fresh vector.
    pub fn take_into(&self, out: &mut Vec<TraceEvent>) {
        out.append(&mut lock_unpoisoned(&self.inner));
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        lock_unpoisoned(&self.inner).push(ev.clone());
    }
}

/// Bounded flight-recorder sink: keeps the most recent `capacity` events,
/// counting (but dropping) older ones. Clones share one ring.
#[derive(Clone)]
pub struct RingSink {
    inner: Arc<Mutex<RingInner>>,
}

struct RingInner {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            inner: Arc::new(Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.inner).buf.iter().cloned().collect()
    }

    /// Number of events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        lock_unpoisoned(&self.inner).dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut r = lock_unpoisoned(&self.inner);
        if r.buf.len() == r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(ev.clone());
    }
}

/// Streaming sink: writes each event as one JSON line to `w`.
///
/// I/O errors do not panic mid-simulation; the first error is retained
/// and reported by [`JsonlSink::error`] (subsequent writes are skipped).
pub struct JsonlSink<W: std::io::Write> {
    w: W,
    line: String,
    error: Option<std::io::Error>,
    lines: u64,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps a writer. Use a `BufWriter` for file targets.
    pub fn new(w: W) -> Self {
        JsonlSink {
            w,
            line: String::with_capacity(128),
            error: None,
            lines: 0,
        }
    }

    /// First I/O error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Number of lines successfully written.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the inner writer (surfacing any retained
    /// error).
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.w.flush()?;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        Ok(self.w)
    }
}

impl<W: std::io::Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        ev.write_json(&mut self.line);
        self.line.push('\n');
        if let Err(e) = self.w.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.w.flush() {
            if self.error.is_none() {
                self.error = Some(e);
            }
        }
    }
}

/// Serializes a slice of events to JSONL (one JSON object per line, each
/// newline-terminated) — the same bytes a [`JsonlSink`] would stream.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        ev.write_json(&mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, seq: u64) -> TraceEvent {
        TraceEvent::KernelStart {
            at: SimTime::from_nanos(ns),
            seq,
            queue: 3,
        }
    }

    #[test]
    fn buffer_sink_shares_one_buffer_across_clones() {
        let buf = BufferSink::new();
        let mut installed: Box<dyn TraceSink> = Box::new(buf.clone());
        installed.record(&ev(10, 1));
        installed.record(&ev(20, 2));
        assert_eq!(buf.len(), 2);
        let events = buf.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at(), SimTime::from_nanos(10));
        assert!(buf.is_empty());
    }

    #[test]
    fn ring_sink_keeps_only_the_most_recent() {
        let ring = RingSink::new(3);
        let mut sink: Box<dyn TraceSink> = Box::new(ring.clone());
        for i in 0..10 {
            sink.record(&ev(i, i));
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(kept[0].at(), SimTime::from_nanos(7));
        assert_eq!(kept[2].at(), SimTime::from_nanos(9));
    }

    #[test]
    fn jsonl_sink_streams_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(5, 1));
        sink.record(&TraceEvent::SmAlloc {
            at: SimTime::from_nanos(6),
            seq: 1,
            sms: 54.5,
        });
        assert_eq!(sink.lines_written(), 2);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"kernel_start\",\"at\":5,\"seq\":1,\"queue\":3}\n\
             {\"ev\":\"sm_alloc\",\"at\":6,\"seq\":1,\"sms\":54.5}\n"
        );
        // The batch serializer produces the same bytes as the stream.
        let events = vec![
            ev(5, 1),
            TraceEvent::SmAlloc {
                at: SimTime::from_nanos(6),
                seq: 1,
                sms: 54.5,
            },
        ];
        assert_eq!(to_jsonl(&events), text);
    }

    #[test]
    fn squad_formed_encodes_entries() {
        let e = TraceEvent::SquadFormed {
            at: SimTime::from_nanos(100),
            id: 7,
            spatial: true,
            split_ratio: 0.5,
            entries: vec![TraceSquadEntry {
                app: 0,
                first_kernel: 4,
                count: 6,
                split_at: 3,
                sm_cap: 40,
                mode: 0,
            }],
        };
        assert_eq!(
            e.to_json(),
            "{\"ev\":\"squad_formed\",\"at\":100,\"id\":7,\"spatial\":true,\"split_ratio\":0.5,\
             \"entries\":[{\"app\":0,\"first_kernel\":4,\"count\":6,\"split_at\":3,\"sm_cap\":40,\"mode\":0}]}"
        );
    }
}
