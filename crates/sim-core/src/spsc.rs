//! Bounded lock-free single-producer/single-consumer rings.
//!
//! The serving front-end's ingest path (DESIGN.md §5l) hands arrivals
//! from one client stream per tenant to the scheduler daemon through one
//! of these rings — the same shape as RTIC's per-priority ready queues
//! (SNIPPETS.md snippet 1): exactly one producer and one consumer per
//! ring, wait-free on both sides, with all storage allocated at
//! construction and never in steady state (the mnemOS rule, snippet 2).
//! The counting-allocator gate in the `bench` crate holds the hot path
//! to 0 allocations per arrival.
//!
//! Correctness contract (property-tested in `tests/spsc_props.rs`):
//!
//! * **FIFO per producer** — items pop in exactly the order they were
//!   pushed.
//! * **No loss under wraparound** — a full ring rejects the push and
//!   returns the item to the caller; nothing is silently dropped.
//! * **Batched drain ≡ one-at-a-time pop** — [`Consumer::drain_into`]
//!   yields the same sequence as repeated [`Consumer::pop`], it just
//!   publishes the consumed slots with one atomic store per batch
//!   instead of one per item.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pad the indices onto separate cache lines so producer and consumer
/// cores don't false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Power-of-two slot count; index arithmetic masks with `mask`.
    mask: usize,
    /// Next slot the consumer will read. Written by the consumer only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written by the producer only.
    tail: CachePadded<AtomicUsize>,
    /// Producer-maintained progress mark (see [`Producer::set_watermark`]):
    /// a monotone virtual-time bound the consumer can read without
    /// touching the ring. `u64::MAX` once the producer closed the stream.
    watermark: AtomicU64,
}

// One producer and one consumer may live on different threads; the
// indices serialize every slot access (each slot is written before the
// tail advance that publishes it, and read before the head advance that
// recycles it).
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Only the unconsumed range holds live values.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.buf[i & self.mask];
            // Safety: slots in [head, tail) were initialized by push and
            // never consumed; both handles are gone (we are in drop).
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// The push side of a ring created by [`ring`]. `!Clone`: exactly one
/// producer exists per ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of `tail` (this side is its only writer).
    tail: usize,
    /// Cached consumer position; refreshed only when the ring looks full.
    head_cache: usize,
}

/// The pop side of a ring created by [`ring`]. `!Clone`: exactly one
/// consumer exists per ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of `head` (this side is its only writer).
    head: usize,
    /// Cached producer position; refreshed only when the ring looks empty.
    tail_cache: usize,
}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to a power of two, minimum 2). All storage is allocated
/// here; push and pop never allocate.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        watermark: AtomicU64::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            inner,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Pushes one item. Returns it back in `Err` when the ring is full —
    /// the caller decides whether that is backpressure (retry) or a shed
    /// (account for it); the ring itself never drops anything.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail - self.head_cache == cap {
            // Looks full on the cached head; refresh from the consumer.
            self.head_cache = self.inner.head.0.load(Ordering::Acquire);
            if self.tail - self.head_cache == cap {
                return Err(value);
            }
        }
        let slot = &self.inner.buf[self.tail & self.inner.mask];
        // Safety: the slot is outside [head, tail), so the consumer will
        // not touch it until the tail store below publishes it.
        unsafe { (*slot.get()).write(value) };
        self.tail += 1;
        self.inner.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Publishes a monotone progress mark (virtual-time nanoseconds by
    /// convention): the producer promises every future [`Self::push`]
    /// carries a timestamp `>= mark`. The ingest stage reads this via
    /// [`Consumer::watermark`] to decide how far the virtual clock may
    /// safely advance while the ring is empty. Marks never move backward.
    pub fn set_watermark(&self, mark: u64) {
        // Release pairs with the consumer's Acquire load: everything
        // pushed before the mark is visible once the mark is.
        let prev = self.inner.watermark.load(Ordering::Relaxed);
        if mark > prev {
            self.inner.watermark.store(mark, Ordering::Release);
        }
    }

    /// Closes the stream: the watermark jumps to `u64::MAX`, telling the
    /// consumer no further items will ever be pushed.
    pub fn close(self) {
        self.inner.watermark.store(u64::MAX, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Items currently in the ring (as of the last producer publish).
    pub fn len(&mut self) -> usize {
        self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
        self.tail_cache - self.head
    }

    /// True when the ring holds no published items.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Pops one item, oldest first.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            // Looks empty on the cached tail; refresh from the producer.
            self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = &self.inner.buf[self.head & self.inner.mask];
        // Safety: the slot is inside [head, tail), so it was initialized
        // by a push that the Acquire load above made visible.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head += 1;
        self.inner.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Batched drain: moves up to `max` items into `out` (oldest first)
    /// and returns how many moved. Identical sequence to repeated
    /// [`Self::pop`], but the consumed slots are published with a single
    /// atomic store, and the producer's tail is loaded once per batch —
    /// the hot-path shape the 1M-arrivals/s gate measures. `out` should
    /// be pre-reserved by the caller; this method itself never allocates
    /// when `out` has spare capacity.
    pub fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if self.tail_cache - self.head < max {
            self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
        }
        let n = (self.tail_cache - self.head).min(max);
        for i in 0..n {
            let slot = &self.inner.buf[(self.head + i) & self.inner.mask];
            // Safety: as in `pop` — all n slots precede the loaded tail.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        if n > 0 {
            self.head += n;
            self.inner.head.0.store(self.head, Ordering::Release);
        }
        n
    }

    /// The producer's progress mark (see [`Producer::set_watermark`]):
    /// `u64::MAX` once the stream is closed.
    pub fn watermark(&self) -> u64 {
        self.inner.watermark.load(Ordering::Acquire)
    }

    /// True when the producer closed the stream ([`Producer::close`]).
    /// Items already in the ring remain poppable.
    pub fn is_closed(&self) -> bool {
        self.watermark() == u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_full_rejection() {
        let (mut p, mut c) = ring::<u32>(4);
        assert_eq!(p.capacity(), 4);
        for i in 0..4 {
            assert!(p.push(i).is_ok());
        }
        assert_eq!(p.push(99), Err(99), "full ring must hand the item back");
        assert_eq!(c.pop(), Some(0));
        assert!(p.push(4).is_ok());
        let mut out = Vec::with_capacity(8);
        assert_eq!(c.drain_into(&mut out, 8), 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut p, mut c) = ring::<u64>(2);
        for round in 0..100u64 {
            assert!(p.push(round).is_ok());
            assert_eq!(c.pop(), Some(round));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn watermark_is_monotone_and_close_is_terminal() {
        let (p, c) = ring::<u8>(2);
        assert_eq!(c.watermark(), 0);
        p.set_watermark(50);
        p.set_watermark(20); // stale mark: ignored
        assert_eq!(c.watermark(), 50);
        assert!(!c.is_closed());
        p.close();
        assert!(c.is_closed());
    }

    #[test]
    fn cross_thread_handoff_keeps_every_item_in_order() {
        let (mut p, mut c) = ring::<u64>(64);
        const N: u64 = 200_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut i = 0;
                while i < N {
                    if p.push(i).is_ok() {
                        i += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                p.close();
            });
            let mut seen = 0u64;
            let mut buf = Vec::with_capacity(64);
            loop {
                buf.clear();
                if c.drain_into(&mut buf, 64) == 0 {
                    if c.is_closed() && c.is_empty() {
                        break;
                    }
                    std::hint::spin_loop();
                    continue;
                }
                for &v in &buf {
                    assert_eq!(v, seen);
                    seen += 1;
                }
            }
            assert_eq!(seen, N);
        });
    }

    #[test]
    fn dropping_a_nonempty_ring_drops_items() {
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let (mut p, _c) = ring::<Rc<()>>(8);
            for _ in 0..5 {
                assert!(p.push(Rc::clone(&probe)).is_ok());
            }
        }
        assert_eq!(Rc::strong_count(&probe), 1, "ring drop leaked items");
    }
}
