//! Property tests on the multi-task scheduler's squad generation.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use bless::{
    determine_config, determine_config_memo, generate_squad, ActiveRequest, BlessParams,
    ConfigMemo, DeployedApp, ExecConfig,
};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use profiler::ProfiledApp;
use proptest::prelude::*;
use sim_core::SimTime;
use std::sync::OnceLock;

fn deployments() -> &'static Vec<ProfiledApp> {
    static CACHE: OnceLock<Vec<ProfiledApp>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let spec = GpuSpec::a100();
        [ModelKind::Vgg11, ModelKind::ResNet50, ModelKind::Bert]
            .iter()
            .map(|&k| ProfiledApp::profile(&AppModel::build(k, Phase::Inference), &spec))
            .collect()
    })
}

fn apps_for(quotas: &[f64]) -> Vec<DeployedApp> {
    let profiles = deployments();
    quotas
        .iter()
        .enumerate()
        .map(|(i, &q)| DeployedApp::new(profiles[i % profiles.len()].clone(), q, None))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Squads never exceed the size cap, select each app's kernels in
    /// order without duplicates, and never select beyond the trace.
    #[test]
    fn prop_squads_are_well_formed(
        max in 1usize..120,
        starts in proptest::collection::vec(0usize..80, 1..3),
        now_ms in 0u64..50,
    ) {
        let quotas: Vec<f64> = vec![1.0 / starts.len() as f64; starts.len()];
        let apps = apps_for(&quotas);
        let active: Vec<ActiveRequest> = starts
            .iter()
            .enumerate()
            .map(|(i, &s)| ActiveRequest {
                app: i,
                arrival: SimTime::ZERO,
                next_kernel: s.min(apps[i].profile.kernel_count() - 1),
            })
            .collect();
        let params = BlessParams { max_kernels_per_squad: max, ..BlessParams::default() };
        let squad = generate_squad(SimTime::from_millis(now_ms), &active, &apps, &params);

        prop_assert!(squad.len() <= max);
        for e in &squad.entries {
            let total = apps[e.app].profile.kernel_count();
            // Consecutive, starting at the request pointer.
            let start = active.iter().find(|r| r.app == e.app).unwrap().next_kernel;
            for (i, &k) in e.kernels.iter().enumerate() {
                prop_assert_eq!(k, start + i);
                prop_assert!(k < total);
            }
        }
    }

    /// The determiner's SP configurations always use every partition and
    /// give each participant at least one slice; its prediction is never
    /// worse than the best strict split it evaluated.
    #[test]
    fn prop_determiner_configs_are_valid(
        counts in proptest::collection::vec(3usize..25, 2..4),
    ) {
        let quotas: Vec<f64> = vec![1.0 / counts.len() as f64; counts.len()];
        let apps = apps_for(&quotas);
        let active: Vec<ActiveRequest> = counts
            .iter()
            .enumerate()
            .map(|(i, _)| ActiveRequest { app: i, arrival: SimTime::ZERO, next_kernel: 1 })
            .collect();
        let params = BlessParams::default();
        let squad = generate_squad(SimTime::from_millis(5), &active, &apps, &params);
        prop_assume!(squad.entries.len() >= 2);
        let choice = determine_config(&squad, &apps, 108);
        match &choice.config {
            ExecConfig::Sp { partitions } => {
                prop_assert_eq!(partitions.len(), squad.entries.len());
                prop_assert_eq!(partitions.iter().sum::<u32>(), 18);
                prop_assert!(partitions.iter().all(|&p| p >= 1));
            }
            ExecConfig::Nsp => {}
        }
        prop_assert!(choice.evaluated >= 1);
    }

    /// Memoized determination is indistinguishable from the plain search
    /// — same config, prediction, and `evaluated` count — and a recurring
    /// squad signature is answered from the memo.
    #[test]
    fn prop_memoized_determiner_matches_plain(
        counts in proptest::collection::vec(3usize..25, 2..4),
    ) {
        let quotas: Vec<f64> = vec![1.0 / counts.len() as f64; counts.len()];
        let apps = apps_for(&quotas);
        let active: Vec<ActiveRequest> = counts
            .iter()
            .enumerate()
            .map(|(i, _)| ActiveRequest { app: i, arrival: SimTime::ZERO, next_kernel: 1 })
            .collect();
        let squad = generate_squad(SimTime::from_millis(5), &active, &apps, &BlessParams::default());
        prop_assume!(squad.entries.len() >= 2);
        let plain = determine_config(&squad, &apps, 108);
        let mut memo = ConfigMemo::new();
        for round in 0..2 {
            let got = determine_config_memo(&mut memo, &squad, &apps, 108);
            prop_assert_eq!(&got.config, &plain.config, "round {}", round);
            prop_assert_eq!(got.predicted, plain.predicted);
            prop_assert_eq!(got.evaluated, plain.evaluated);
        }
        prop_assert_eq!(memo.hits, 1);
        prop_assert_eq!(memo.misses, 1);
    }

    /// The profile's prefix table agrees with the naive per-kernel sum on
    /// every partition and every contiguous kernel range — the exactness
    /// guarantee behind the determiner's O(1) stacked-duration lookups.
    #[test]
    fn prop_prefix_range_sums_match_naive_stacking(
        app_idx in 0usize..3,
        partition in 0usize..18,
        start in 0usize..40,
        len in 0usize..40,
    ) {
        let apps = apps_for(&[1.0 / 3.0; 3]);
        let app = &apps[app_idx];
        let total = app.profile.kernel_count();
        let start = start.min(total);
        let end = (start + len).min(total);
        let naive: sim_core::SimDuration = (start..end)
            .map(|k| app.profile.kernel_duration(partition, k))
            .sum();
        prop_assert_eq!(app.stacked_duration(partition, start, end), naive);
        prop_assert_eq!(app.profile.duration_range_sum(partition, start, end), naive);
    }

    /// A lagging request (old arrival, little progress) always receives
    /// at least as many kernels as an identical fresh one — the §4.3.2
    /// compensation property.
    #[test]
    fn prop_lagging_requests_are_compensated(
        wait_ms in 5u64..200,
    ) {
        let apps = apps_for(&[0.5, 0.5]);
        let now = SimTime::from_millis(wait_ms + 1);
        let reqs = [
            ActiveRequest { app: 0, arrival: SimTime::from_millis(wait_ms), next_kernel: 0 },
            ActiveRequest { app: 1, arrival: SimTime::ZERO, next_kernel: 0 },
        ];
        let squad = generate_squad(now, &reqs, &apps, &BlessParams::default());
        let count = |app: usize| {
            squad.entries.iter().find(|e| e.app == app).map_or(0, |e| e.kernels.len())
        };
        // App 1 has waited `wait_ms` longer with zero progress: it must
        // not be starved below its peer.
        prop_assert!(count(1) >= count(0), "{} vs {}", count(1), count(0));
    }
}
