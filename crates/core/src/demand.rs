//! Tenant-level channel-demand aggregation.
//!
//! The per-resource interference model (DESIGN.md §5j) attaches a
//! [`ChannelDemand`] vector to every kernel. Placement, however, decides
//! at *tenant* granularity: the controller needs one vector per profiled
//! application summarizing how hard the whole request pipeline leans on
//! each contended resource. This module folds a profile's kernel table
//! into that aggregate.
//!
//! The fold is work-weighted: a kernel contributes proportionally to its
//! total SM·ns of work, so a short cache-hot kernel does not drown out
//! the long DRAM-bound ones that actually shape co-location interference.
//! Memcpy descriptors carry zero work and zero demand, so they drop out
//! naturally (their PCIe pressure is modeled through the DMA coupling
//! weight at simulation time, not through placement).

use gpu_sim::{ChannelDemand, NUM_CHANNELS};
use profiler::ProfiledApp;

/// The work-weighted mean [`ChannelDemand`] of a profile's kernel table.
///
/// Each component is the average of the kernels' per-channel demand,
/// weighted by kernel work (SM·ns); the result is clamped into `[0, 1]`
/// component-wise (a pure weighted mean of in-range values can drift a
/// ULP past 1.0 in the division). Profiles with no compute work (e.g.
/// all-memcpy pipelines) aggregate to [`ChannelDemand::ZERO`].
pub fn aggregate_demand(profile: &ProfiledApp) -> ChannelDemand {
    let mut acc = [0.0f64; NUM_CHANNELS];
    let mut total_work = 0.0f64;
    for k in profile.kernels.iter() {
        if k.work <= 0.0 {
            continue;
        }
        total_work += k.work;
        for (c, a) in acc.iter_mut().enumerate() {
            *a += k.work * k.demand.0[c];
        }
    }
    if total_work <= 0.0 {
        return ChannelDemand::ZERO;
    }
    let mut out = [0.0f64; NUM_CHANNELS];
    for (c, o) in out.iter_mut().enumerate() {
        *o = (acc[c] / total_work).clamp(0.0, 1.0);
    }
    ChannelDemand(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{Channel, GpuSpec};

    #[test]
    fn aggregate_is_work_weighted_and_in_range() {
        let spec = GpuSpec::a100();
        let profile = ProfiledApp::profile(
            &AppModel::build(ModelKind::ResNet50, Phase::Inference),
            &spec,
        );
        let d = aggregate_demand(&profile);
        for c in Channel::ALL {
            assert!(
                (0.0..=1.0).contains(&d.get(c)),
                "{}: {}",
                c.name(),
                d.get(c)
            );
        }
        // Default kernel constructors collapse mem_intensity onto DramBw,
        // so the aggregate concentrates there and matches the hand fold.
        let mut want = 0.0;
        let mut work = 0.0;
        for k in profile.kernels.iter() {
            if k.work > 0.0 {
                want += k.work * k.demand.get(Channel::DramBw);
                work += k.work;
            }
        }
        assert!(work > 0.0);
        assert_eq!(d.get(Channel::DramBw).to_bits(), (want / work).to_bits());
        assert_eq!(d.get(Channel::L2), 0.0);
    }

    #[test]
    fn models_with_different_intensity_mixes_separate() {
        let spec = GpuSpec::a100();
        let a = aggregate_demand(&ProfiledApp::profile(
            &AppModel::build(ModelKind::Vgg11, Phase::Inference),
            &spec,
        ));
        let b = aggregate_demand(&ProfiledApp::profile(
            &AppModel::build(ModelKind::Bert, Phase::Inference),
            &spec,
        ));
        // The aggregate is a placement signal: distinct models must not
        // collapse to one indistinguishable vector.
        assert_ne!(
            a.get(Channel::DramBw).to_bits(),
            b.get(Channel::DramBw).to_bits()
        );
    }
}
