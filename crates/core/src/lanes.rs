//! Runtime lane hints: deriving an intra-GPU lane partition from the
//! squad/partition structure.
//!
//! The lane-sharded engine (`gpu_sim::lanes`) can only split tenants onto
//! separate lanes when they are *structurally isolated* — nothing one
//! tenant does may be observable by another. The BLESS runtime knows this
//! structure exactly, because it is the one creating it:
//!
//! * An app pinned to [`ShareMode::StrictSpatial`] runs every kernel
//!   inside its own SM-affinity partition and never spills into the
//!   shared pool: it is a lane candidate, capped at its quota's SM count.
//! * A [`ShareMode::SemiSpatial`] app launches its entry tails into the
//!   *unrestricted* context, i.e. the shared pool — it couples with every
//!   other pool tenant through the allocator and must share a lane with
//!   them.
//! * A [`ShareMode::Temporal`] app time-multiplexes the whole device in
//!   solo squads; it observes (and is observed by) whoever else touches
//!   the shared pool, so it also stays on the pool lane.
//!
//! The hint is *structural only*: it reflects SM-allocator reachability,
//! not the memory-bandwidth interference term, which in the monolithic
//! engine couples all compute kernels globally. Promoting a hint into an
//! actual lane split is exact when cross-lane kernels have zero
//! `mem_intensity` (hard MIG-style isolation) and an approximation
//! otherwise — the caller owns that call; see DESIGN.md §5h.

use metrics::ShareMode;

/// What one lane holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaneKind {
    /// A single tenant hard-capped to an SM slice (strict-spatial).
    Partition {
        /// SM cap for the lane, derived from the tenant's quota.
        sm_cap: u32,
    },
    /// The shared-pool lane: every tenant whose kernels can reach the
    /// common SM pool (semi-spatial tails, temporal solo squads).
    SharedPool,
}

/// One lane: the apps bound to it and what binds them together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneGroup {
    /// App ids on this lane, ascending.
    pub apps: Vec<usize>,
    /// The lane's isolation structure.
    pub kind: LaneKind,
}

/// A lane partition of a GPU's tenants, derived from share modes and
/// quotas (see the module docs for the grouping rule).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneHints {
    /// The lanes. When a shared-pool lane exists it is first; partition
    /// lanes follow in ascending app order. Never empty for a non-empty
    /// tenant set.
    pub groups: Vec<LaneGroup>,
}

impl LaneHints {
    /// Derives lane hints from per-app share modes and quotas on a device
    /// with `num_sms` SMs. `modes` and `quotas` are indexed by app id and
    /// must have equal length.
    ///
    /// Apps whose kernels can reach the shared pool (semi-spatial,
    /// temporal) coalesce into one shared-pool lane; each strict-spatial
    /// app gets its own partition lane capped at `ceil(quota * num_sms)`
    /// (minimum 1 SM).
    ///
    /// # Panics
    ///
    /// Panics if `modes` and `quotas` differ in length.
    pub fn from_share_modes(modes: &[ShareMode], quotas: &[f64], num_sms: u32) -> Self {
        assert_eq!(
            modes.len(),
            quotas.len(),
            "one quota per app is required to size partition lanes"
        );
        let mut pool = Vec::new();
        let mut partitions = Vec::new();
        for (app, mode) in modes.iter().enumerate() {
            match mode {
                ShareMode::StrictSpatial => {
                    let sm_cap = ((quotas[app] * num_sms as f64).ceil() as u32).clamp(1, num_sms);
                    partitions.push(LaneGroup {
                        apps: vec![app],
                        kind: LaneKind::Partition { sm_cap },
                    });
                }
                ShareMode::SemiSpatial | ShareMode::Temporal => pool.push(app),
            }
        }
        let mut groups = Vec::new();
        if !pool.is_empty() {
            groups.push(LaneGroup {
                apps: pool,
                kind: LaneKind::SharedPool,
            });
        }
        groups.extend(partitions);
        LaneHints { groups }
    }

    /// Number of lanes in the hint.
    pub fn num_lanes(&self) -> usize {
        self.groups.len()
    }

    /// The lane index holding `app`, if the app is covered by the hint.
    pub fn lane_of(&self, app: usize) -> Option<usize> {
        self.groups
            .iter()
            .position(|g| g.apps.binary_search(&app).is_ok())
    }

    /// True when every lane holds exactly one tenant behind a hard cap —
    /// the structure under which lane sharding is at its most profitable
    /// (no shared-pool serialization at all).
    pub fn is_fully_sharded(&self) -> bool {
        !self.groups.is_empty()
            && self
                .groups
                .iter()
                .all(|g| matches!(g.kind, LaneKind::Partition { .. }) && g.apps.len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_spatial_apps_get_their_own_capped_lanes() {
        let modes = [ShareMode::StrictSpatial, ShareMode::StrictSpatial];
        let hints = LaneHints::from_share_modes(&modes, &[0.25, 0.75], 108);
        assert_eq!(hints.num_lanes(), 2);
        assert!(hints.is_fully_sharded());
        assert_eq!(hints.groups[0].kind, LaneKind::Partition { sm_cap: 27 });
        assert_eq!(hints.groups[1].kind, LaneKind::Partition { sm_cap: 81 });
        assert_eq!(hints.lane_of(0), Some(0));
        assert_eq!(hints.lane_of(1), Some(1));
        assert_eq!(hints.lane_of(2), None);
    }

    #[test]
    fn pool_reachable_apps_coalesce_onto_one_lane() {
        let modes = [
            ShareMode::SemiSpatial,
            ShareMode::StrictSpatial,
            ShareMode::Temporal,
            ShareMode::SemiSpatial,
        ];
        let hints = LaneHints::from_share_modes(&modes, &[0.25; 4], 108);
        assert_eq!(hints.num_lanes(), 2);
        assert!(!hints.is_fully_sharded());
        assert_eq!(hints.groups[0].kind, LaneKind::SharedPool);
        assert_eq!(hints.groups[0].apps, vec![0, 2, 3]);
        assert_eq!(hints.lane_of(1), Some(1));
        assert_eq!(hints.lane_of(3), Some(0));
    }

    #[test]
    fn tiny_quota_still_gets_one_sm() {
        let hints = LaneHints::from_share_modes(&[ShareMode::StrictSpatial], &[0.001], 108);
        assert_eq!(hints.groups[0].kind, LaneKind::Partition { sm_cap: 1 });
    }

    #[test]
    fn empty_tenant_set_yields_no_lanes() {
        let hints = LaneHints::from_share_modes(&[], &[], 108);
        assert_eq!(hints.num_lanes(), 0);
        assert!(!hints.is_fully_sharded());
    }
}
