//! Tunable BLESS parameters (§6.7) and ablation switches (§6.8).

/// Runtime parameters of the BLESS scheduler.
#[derive(Clone, Debug)]
pub struct BlessParams {
    /// Maximum number of kernels per squad (paper default: 50). Smaller
    /// squads give finer quota control; larger squads amortize the squad
    /// switch (Fig. 19a).
    pub max_kernels_per_squad: usize,
    /// Semi-SP split ratio `c%`: the fraction of each request's kernels in
    /// a spatially-partitioned squad that keep the SM restriction; the
    /// rear `1 − c%` run unrestricted (paper default: 50%, Fig. 19b).
    pub split_ratio: f64,
    /// Scheduling granularity in kernels (§6.10): with `G > 1` the
    /// scheduler treats runs of `G` consecutive kernels as one CUDA-graph
    /// unit — selected atomically, launched with a single API call, and
    /// paying the per-kernel scheduling cost once per graph. `1` (the
    /// default) is plain kernel-granularity BLESS.
    pub graph_granularity: usize,
    /// How many kernels per squad entry the kernel manager keeps in
    /// flight on the device at once. Kernels are fed progressively so a
    /// squad can drain quickly when a new tenant's request arrives
    /// (§3.3's "shrink instantly / lazily wait for completion"); the
    /// window must be large enough to conceal the 3 µs launch overhead.
    pub launch_window: usize,
    /// Drain the in-flight squad when a tenant outside it arrives (§3.3's
    /// "shrink instantly"). Disabling it makes squads run to completion,
    /// which restores the paper's Fig. 19(a) tradeoff where very large
    /// squads cannot serve large quotas precisely.
    pub drain_on_arrival: bool,
    /// Ablation: disable the multi-task scheduler's progress-based kernel
    /// selection and fall back to round-robin (§6.8: +16.5% latency).
    pub disable_multitask: bool,
    /// Ablation: disable the execution configuration determiner and always
    /// run squads without spatial restriction (§6.8: +7.6% latency).
    pub disable_determiner: bool,
    /// Drift watchdog configuration. `None` (the default) disables the
    /// watchdog entirely — the no-fault fast path stays byte-identical to
    /// the unhardened scheduler.
    pub watchdog: Option<WatchdogParams>,
}

/// Configuration of the squad-duration drift watchdog.
///
/// After every squad the watchdog compares each fully-completed entry's
/// observed duration with the duration the predictor promised. An app
/// whose ratio exceeds `degrade_threshold` is demoted one step on the
/// degradation ladder (semi-spatial → strict spatial → pure temporal);
/// after `promote_after` consecutive clean squads it is promoted one step
/// back up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogParams {
    /// Observed/predicted squad-entry duration ratio above which the app
    /// is demoted. Must leave headroom over benign model error (launch
    /// overheads + memory interference inflate honest squads by ~10-15%).
    pub degrade_threshold: f64,
    /// Consecutive clean squads required to promote one step back up.
    pub promote_after: u32,
}

impl Default for WatchdogParams {
    fn default() -> Self {
        WatchdogParams {
            degrade_threshold: 1.5,
            promote_after: 3,
        }
    }
}

impl Default for BlessParams {
    fn default() -> Self {
        BlessParams {
            max_kernels_per_squad: 50,
            split_ratio: 0.5,
            graph_granularity: 1,
            launch_window: 6,
            drain_on_arrival: true,
            disable_multitask: false,
            disable_determiner: false,
            watchdog: None,
        }
    }
}

impl BlessParams {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if the squad size is zero or the split ratio is outside
    /// `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.max_kernels_per_squad > 0,
            "squads need at least one kernel"
        );
        assert!(
            (0.0..=1.0).contains(&self.split_ratio),
            "split ratio must be in [0, 1], got {}",
            self.split_ratio
        );
        assert!(self.launch_window > 0, "launch window must be positive");
        assert!(
            self.graph_granularity > 0,
            "graph granularity must be positive"
        );
        if let Some(wd) = &self.watchdog {
            assert!(
                wd.degrade_threshold > 1.0,
                "degrade threshold must exceed 1.0 (got {})",
                wd.degrade_threshold
            );
            assert!(wd.promote_after > 0, "promote_after must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = BlessParams::default();
        assert_eq!(p.max_kernels_per_squad, 50);
        assert_eq!(p.split_ratio, 0.5);
        assert!(!p.disable_multitask);
        assert!(p.drain_on_arrival);
        assert!(!p.disable_determiner);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "split ratio")]
    fn bad_split_ratio_panics() {
        BlessParams {
            split_ratio: 1.5,
            ..BlessParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn zero_squad_panics() {
        BlessParams {
            max_kernels_per_squad: 0,
            ..BlessParams::default()
        }
        .validate();
    }
}
