//! The serving front-end: lock-free ingest → BLESS daemon (DESIGN.md §5l).
//!
//! Open-loop serving turns BLESS from a batch replayer into a daemon:
//! client streams hand arrivals to the scheduler through one bounded
//! SPSC ring per tenant ([`sim_core::spsc`]), an [`IngestStage`] drains
//! them in batches, applies per-request admission (token-bucket rate
//! limits and outstanding-queue backpressure), and feeds the admitted
//! requests into the virtual-clock simulation at exactly the right
//! interaction points — so a daemon run is *byte-identical* to the batch
//! path replaying the same trace.
//!
//! # Determinism contract
//!
//! Every observable decision is a pure function of the arrival timestamps,
//! never of wall-clock producer/consumer interleaving:
//!
//! * Arrivals are processed in **global virtual-time order**; ties across
//!   tenants break toward the lowest tenant index (the same order the
//!   batch path's stable sort yields for app-major arrival lists).
//! * An arrival at `t` is processed only once it is provably globally
//!   minimal: every other tenant either has a staged arrival at `>= t`
//!   or has published a progress watermark `> t` (watermarks are
//!   *exclusive* lower bounds on future pushes — see
//!   [`Producer::set_watermark`](sim_core::spsc::Producer::set_watermark)).
//! * Before deciding admission at `t`, the simulation runs to `t − 1 ns`,
//!   so the completion state the backpressure bound sees is "everything
//!   that completed strictly before `t`" — independent of how eagerly the
//!   pump loop was called.
//! * Token buckets refill in integer nanotokens keyed to arrival virtual
//!   times (1 nanotoken = 10⁻⁹ token, so a bucket accrues exactly
//!   `Δt_ns × rate_per_sec` nanotokens), never to wall time.
//!
//! # Accounting contract
//!
//! No request is silently lost. Every offered arrival gets a dense
//! per-tenant `seq`, and either becomes an admitted request (dense `req`,
//! [`TraceEvent::RequestAdmitted`]) or is shed with a typed reason
//! ([`TraceEvent::RequestShed`], [`AdmissionError::Shed`]); the trace
//! validator checks `admitted + shed = offered` per tenant. Deployment
//! itself is gated by the profiler's placement admission
//! ([`profiler::admit`]) before the daemon accepts a single request.

use gpu_sim::{Gpu, RequestArrival, RunOutcome, Simulation};
use profiler::{admit, AdmissionError, AdmissionPolicy, ProfiledApp, ShedReason};
use sim_core::spsc::{self, Consumer, Producer};
use sim_core::trace::TraceEvent;
use sim_core::SimTime;

use crate::deploy::DeployedApp;
use crate::params::BlessParams;
use crate::runtime::BlessDriver;

/// One whole token in the bucket's integer fixed-point unit.
const NANOTOKENS_PER_TOKEN: u64 = 1_000_000_000;

/// A per-tenant token-bucket rate limit, evaluated in virtual time.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Sustained admission rate in requests per (virtual) second.
    pub tokens_per_sec: u64,
    /// Burst capacity in requests (the bucket starts full).
    pub burst: u64,
}

/// Configuration of the ingest stage.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Slots per tenant ring (rounded up to a power of two). A full ring
    /// pushes back on the *producer* ([`TenantStream::offer`] returns the
    /// arrival); it never sheds.
    pub ring_capacity: usize,
    /// Maximum arrivals moved per batched drain — one atomic store per
    /// batch on the consumer side.
    pub drain_batch: usize,
    /// Token-bucket rate limit applied to every tenant; `None` admits at
    /// any rate. Override per tenant with [`IngestStage::set_rate`].
    pub rate: Option<RateLimit>,
    /// Backpressure bound: a tenant with this many admitted-but-not-
    /// completed requests sheds new arrivals with
    /// [`ShedReason::Backpressure`]. `None` disables the bound.
    pub max_outstanding: Option<u32>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            ring_capacity: 1024,
            drain_batch: 64,
            rate: None,
            max_outstanding: None,
        }
    }
}

/// Where admitted arrivals go: the virtual-clock interaction points of
/// the simulation the ingest stage drives. [`ServeDaemon`] implements
/// this over `Simulation<BlessDriver>`; benches substitute a counting
/// sink so the ingest hot path can be measured in isolation.
pub trait IngestSink {
    /// Advance the virtual clock so that every event *strictly before*
    /// `t` has been processed. Called before any admission decision at
    /// `t`, and opportunistically while the stage waits for producers.
    fn run_until_before(&mut self, t: SimTime);
    /// Hand over one admitted arrival (timestamps arrive non-decreasing).
    fn accept(&mut self, arrival: RequestArrival);
    /// Number of `app`'s admitted requests that have completed, as of the
    /// last clock advance. Monotone; drives the backpressure bound.
    fn completed_prefix(&mut self, app: usize) -> u64;
    /// Emit an ingest trace event (no-op when tracing is disabled).
    fn emit(&mut self, ev: TraceEvent);
}

/// Deterministic integer token bucket (virtual-time keyed).
#[derive(Clone, Copy, Debug)]
struct TokenBucket {
    /// Current fill in nanotokens.
    fill: u64,
    /// Capacity in nanotokens.
    cap: u64,
    /// Refill rate: nanotokens per nanosecond == tokens per second.
    rate: u64,
    /// Virtual time of the last refill, in nanoseconds.
    last_ns: u64,
}

impl TokenBucket {
    fn new(limit: RateLimit) -> Self {
        let cap = limit.burst.saturating_mul(NANOTOKENS_PER_TOKEN);
        TokenBucket {
            fill: cap,
            cap,
            rate: limit.tokens_per_sec,
            last_ns: 0,
        }
    }

    /// Refills to `now_ns` and takes one token if available.
    fn admit(&mut self, now_ns: u64) -> bool {
        let dt = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        let refill = (dt as u128).saturating_mul(self.rate as u128);
        self.fill = ((self.fill as u128).saturating_add(refill)).min(self.cap as u128) as u64;
        if self.fill >= NANOTOKENS_PER_TOKEN {
            self.fill -= NANOTOKENS_PER_TOKEN;
            true
        } else {
            false
        }
    }
}

/// The producer handle of one tenant's arrival stream. Owned by the
/// client (possibly on another thread); the paired consumer lives inside
/// the [`IngestStage`].
pub struct TenantStream {
    tx: Producer<u64>,
    /// Largest timestamp offered or promised so far (arrivals on one
    /// stream must be non-decreasing — that is what makes the producer's
    /// watermark a sound clock bound).
    last_ns: u64,
}

impl TenantStream {
    /// Offers one arrival at virtual time `at`. A full ring returns the
    /// arrival in `Err` — backpressure toward the client, never a silent
    /// drop. Successful offers advance the stream's watermark to `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes an earlier offer or [`Self::advance`] on
    /// this stream.
    pub fn offer(&mut self, at: SimTime) -> Result<(), SimTime> {
        let t = at.as_nanos();
        assert!(
            t >= self.last_ns,
            "arrivals on one tenant stream must be non-decreasing"
        );
        match self.tx.push(t) {
            Ok(()) => {
                self.last_ns = t;
                self.tx.set_watermark(t);
                Ok(())
            }
            Err(t) => Err(SimTime::from_nanos(t)),
        }
    }

    /// Offers one arrival, spinning while the ring is full.
    pub fn offer_blocking(&mut self, at: SimTime) {
        while self.offer(at).is_err() {
            std::hint::spin_loop();
        }
    }

    /// Promises that every future offer carries a timestamp `>= at`,
    /// letting the daemon advance its clock past an idle stream.
    pub fn advance(&mut self, at: SimTime) {
        self.last_ns = self.last_ns.max(at.as_nanos());
        self.tx.set_watermark(at.as_nanos());
    }

    /// Closes the stream: no further arrivals will ever be offered.
    /// Dropping the stream has the same effect, so an abandoned producer
    /// can never wedge the daemon's clock.
    pub fn close(self) {
        // The terminal watermark is published by `Drop`.
    }
}

impl Drop for TenantStream {
    fn drop(&mut self) {
        // A dropped producer can never push again, so jumping the
        // watermark to the terminal mark is sound (and idempotent after
        // an explicit `close`).
        self.tx.set_watermark(u64::MAX);
    }
}

/// Per-tenant ingest accounting: every offered arrival is either admitted
/// or shed with a typed reason; nothing is silently lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantIngestStats {
    /// Arrivals offered so far (dense `seq` space).
    pub offered: u64,
    /// Arrivals admitted so far (dense `req` space).
    pub admitted: u64,
    /// Arrivals shed by the token-bucket rate limit.
    pub shed_rate_limited: u64,
    /// Arrivals shed by the outstanding-queue backpressure bound.
    pub shed_backpressure: u64,
}

impl TenantIngestStats {
    /// Total arrivals shed.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limited + self.shed_backpressure
    }
}

/// The consumer side of one tenant's stream plus its admission state.
struct Lane {
    rx: Consumer<u64>,
    /// Drained-but-unprocessed arrival timestamps; `pos` is the cursor.
    /// Reused every batch — capacity never exceeds `drain_batch`.
    staged: Vec<u64>,
    pos: usize,
    bucket: Option<TokenBucket>,
    /// Whether the last emitted backpressure transition was `On`.
    bp_on: bool,
    stats: TenantIngestStats,
}

impl Lane {
    /// The lane's clock bound: the next staged arrival if any, else the
    /// producer's watermark (no future arrival can precede either).
    fn front(&self) -> Option<u64> {
        self.staged.get(self.pos).copied()
    }
}

/// Outcome of one [`IngestStage::pump`] round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PumpProgress {
    /// Arrivals processed (admitted or shed) this round.
    pub processed: u64,
    /// True when every stream is closed and fully drained — the daemon
    /// can run the simulation out to its horizon.
    pub drained: bool,
}

/// The admission front-end: drains per-tenant rings in batches, decides
/// admit/shed per arrival in deterministic global virtual-time order, and
/// feeds an [`IngestSink`]. Allocates only at construction (ring slots,
/// staging buffers); the steady-state pump path is allocation-free —
/// asserted by the `serve_throughput` bench's counting-allocator gate.
pub struct IngestStage {
    lanes: Vec<Lane>,
    drain_batch: usize,
    max_outstanding: Option<u32>,
}

impl IngestStage {
    /// Creates a stage with one stream per tenant. Returns the producer
    /// handles in tenant order.
    pub fn new(tenants: usize, cfg: &IngestConfig) -> (Self, Vec<TenantStream>) {
        let mut lanes = Vec::with_capacity(tenants);
        let mut streams = Vec::with_capacity(tenants);
        for _ in 0..tenants {
            let (tx, rx) = spsc::ring(cfg.ring_capacity);
            streams.push(TenantStream { tx, last_ns: 0 });
            lanes.push(Lane {
                rx,
                staged: Vec::with_capacity(cfg.drain_batch),
                pos: 0,
                bucket: cfg.rate.map(TokenBucket::new),
                bp_on: false,
                stats: TenantIngestStats::default(),
            });
        }
        (
            IngestStage {
                lanes,
                drain_batch: cfg.drain_batch.max(1),
                max_outstanding: cfg.max_outstanding,
            },
            streams,
        )
    }

    /// Overrides one tenant's rate limit (`None` lifts it). Call before
    /// the first pump; changing limits mid-stream would not be replayable
    /// from the trace alone.
    pub fn set_rate(&mut self, app: usize, rate: Option<RateLimit>) {
        self.lanes[app].bucket = rate.map(TokenBucket::new);
    }

    /// Number of tenant lanes.
    pub fn tenants(&self) -> usize {
        self.lanes.len()
    }

    /// Ingest accounting for one tenant.
    pub fn tenant_stats(&self, app: usize) -> TenantIngestStats {
        self.lanes[app].stats
    }

    /// One pump round: drain every ring, process all arrivals that are
    /// provably next in global virtual-time order, then advance the sink's
    /// clock as far as every lane's bound allows. Non-blocking — call in
    /// a loop (spinning or parked) until `drained`.
    pub fn pump(&mut self, sink: &mut impl IngestSink) -> PumpProgress {
        let mut processed = 0u64;
        let safe_bound = loop {
            // Refill empty stagings and find the minimal staged arrival
            // (ties break toward the lowest lane index — matching the
            // batch path's stable sort of app-major arrival lists) plus
            // the tightest bound over lanes with nothing staged.
            let mut best: Option<(u64, usize)> = None;
            let mut empty_bound = u64::MAX;
            for i in 0..self.lanes.len() {
                let lane = &mut self.lanes[i];
                if lane.pos == lane.staged.len() {
                    lane.staged.clear();
                    lane.pos = 0;
                    lane.rx.drain_into(&mut lane.staged, self.drain_batch);
                }
                match lane.front() {
                    Some(t) => {
                        if best.is_none_or(|(bt, _)| t < bt) {
                            best = Some((t, i));
                        }
                    }
                    // Exclusive watermark: future pushes are >= it, so
                    // only arrivals *strictly before* it are settled.
                    None => empty_bound = empty_bound.min(lane.rx.watermark()),
                }
            }
            match best {
                // `t == empty_bound` is not safe: an idle lane with a
                // lower index could still produce an equal-time arrival
                // that must win the tie.
                Some((t, lane)) if t < empty_bound => {
                    self.process_one(lane, t, sink);
                    processed += 1;
                }
                Some((t, _)) => break empty_bound.min(t),
                None => break empty_bound,
            }
        };
        // Opportunistic clock advance while waiting on producers: every
        // event before the global bound is settled. Harmless for
        // determinism — any admission decision at `t` re-runs to `t − 1`
        // first, and simulation event processing is a function of virtual
        // time only.
        if safe_bound > 0 {
            let horizon = if safe_bound == u64::MAX {
                None // All streams closed; the caller picks the final horizon.
            } else {
                Some(SimTime::from_nanos(safe_bound))
            };
            if let Some(h) = horizon {
                sink.run_until_before(h);
            }
        }
        PumpProgress {
            processed,
            drained: self.drained(),
        }
    }

    /// True when every stream is closed and no arrival remains staged or
    /// in a ring.
    pub fn drained(&mut self) -> bool {
        self.lanes
            .iter_mut()
            .all(|l| l.pos == l.staged.len() && l.rx.is_closed() && l.rx.is_empty())
    }

    /// Admits or sheds the arrival at `t_ns` on `lane`, emitting the
    /// ingest trace events. Backpressure is evaluated first (it reflects
    /// queue state and consumes no token); the rate limit spends a token
    /// only on admission.
    fn process_one(&mut self, lane: usize, t_ns: u64, sink: &mut impl IngestSink) {
        let at = SimTime::from_nanos(t_ns);
        sink.run_until_before(at);
        let completed = sink.completed_prefix(lane);
        let l = &mut self.lanes[lane];
        l.pos += 1;
        let seq = l.stats.offered;
        l.stats.offered += 1;
        let app = lane as u32;

        let outstanding = l.stats.admitted.saturating_sub(completed);
        let bp = self
            .max_outstanding
            .is_some_and(|cap| outstanding >= cap as u64);
        if bp != l.bp_on {
            l.bp_on = bp;
            sink.emit(if bp {
                TraceEvent::BackpressureOn {
                    at,
                    app,
                    outstanding: outstanding.min(u32::MAX as u64) as u32,
                }
            } else {
                TraceEvent::BackpressureOff { at, app }
            });
        }
        if bp {
            l.stats.shed_backpressure += 1;
            sink.emit(TraceEvent::RequestShed {
                at,
                app,
                seq,
                reason: ShedReason::Backpressure.code(),
            });
            return;
        }
        if let Some(bucket) = &mut l.bucket {
            if !bucket.admit(t_ns) {
                l.stats.shed_rate_limited += 1;
                sink.emit(TraceEvent::RequestShed {
                    at,
                    app,
                    seq,
                    reason: ShedReason::RateLimited.code(),
                });
                return;
            }
        }
        let req = l.stats.admitted;
        l.stats.admitted += 1;
        sink.emit(TraceEvent::RequestAdmitted { at, app, req, seq });
        sink.accept(RequestArrival {
            app: lane,
            req: req as usize,
            at,
        });
    }
}

/// [`IngestSink`] over a live BLESS simulation: admitted arrivals are
/// injected into the virtual-clock event loop, completions are read from
/// the driver's request log through an amortized per-tenant cursor
/// (each record is inspected once, ever), and trace events go to the
/// GPU's trace sink.
struct BlessSink {
    sim: Simulation<BlessDriver>,
    /// Per-tenant count of leading completed records in the request log.
    done_ptr: Vec<usize>,
}

impl IngestSink for BlessSink {
    fn run_until_before(&mut self, t: SimTime) {
        let ns = t.as_nanos();
        if ns > 0 {
            self.sim.run(SimTime::from_nanos(ns - 1));
        }
    }

    fn accept(&mut self, arrival: RequestArrival) {
        self.sim.inject_arrival(arrival);
    }

    fn completed_prefix(&mut self, app: usize) -> u64 {
        let recs = self.sim.driver.log.records(app);
        let p = &mut self.done_ptr[app];
        while *p < recs.len() && recs[*p].completion.is_some() {
            *p += 1;
        }
        *p as u64
    }

    fn emit(&mut self, ev: TraceEvent) {
        if self.sim.gpu.tracing_enabled() {
            self.sim.gpu.trace_emit(ev);
        }
    }
}

/// The BLESS serving daemon: an [`IngestStage`] feeding a live
/// `Simulation<BlessDriver>`. Construction runs the profiler's placement
/// admission (§4.2.2) — a deployment the batch path would reject never
/// starts serving.
pub struct ServeDaemon {
    stage: IngestStage,
    sink: BlessSink,
}

impl ServeDaemon {
    /// Deploys `apps` on `gpu` behind an ingest stage. Returns the daemon
    /// plus one [`TenantStream`] per app (in app order), or the profiler's
    /// typed rejection.
    pub fn new(
        apps: Vec<DeployedApp>,
        params: BlessParams,
        gpu: Gpu,
        cfg: &IngestConfig,
        capacity_mib: u64,
        policy: &AdmissionPolicy,
    ) -> Result<(Self, Vec<TenantStream>), AdmissionError> {
        let profiles: Vec<&ProfiledApp> = apps.iter().map(|a| &*a.profile).collect();
        admit(&profiles, capacity_mib, policy)?;
        let tenants = apps.len();
        let driver = BlessDriver::new(apps, params);
        let sim = Simulation::new(gpu, driver, Vec::new());
        let (stage, streams) = IngestStage::new(tenants, cfg);
        Ok((
            ServeDaemon {
                stage,
                sink: BlessSink {
                    sim,
                    done_ptr: vec![0; tenants],
                },
            },
            streams,
        ))
    }

    /// Overrides one tenant's rate limit before serving starts.
    pub fn set_rate(&mut self, app: usize, rate: Option<RateLimit>) {
        self.stage.set_rate(app, rate);
    }

    /// One non-blocking pump round (see [`IngestStage::pump`]).
    pub fn pump(&mut self) -> PumpProgress {
        self.stage.pump(&mut self.sink)
    }

    /// Pumps until every stream is closed and drained (spinning while
    /// producers catch up), then runs the simulation out to `horizon`.
    pub fn run_to_completion(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            let p = self.pump();
            if p.drained {
                break;
            }
            if p.processed == 0 {
                std::hint::spin_loop();
            }
        }
        self.sink.sim.run(horizon)
    }

    /// Ingest accounting for one tenant.
    pub fn tenant_stats(&self, app: usize) -> TenantIngestStats {
        self.stage.tenant_stats(app)
    }

    /// The underlying simulation (request log, GPU stats, trace sink).
    pub fn sim(&self) -> &Simulation<BlessDriver> {
        &self.sink.sim
    }

    /// Mutable access to the underlying simulation (e.g. to install a
    /// trace sink before serving).
    pub fn sim_mut(&mut self) -> &mut Simulation<BlessDriver> {
        &mut self.sink.sim
    }

    /// Consumes the daemon and returns the simulation for post-run
    /// analysis.
    pub fn into_sim(self) -> Simulation<BlessDriver> {
        self.sink.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that records accepted arrivals and simulates instant (or
    /// withheld) completions.
    #[derive(Default)]
    struct TestSink {
        accepted: Vec<RequestArrival>,
        events: Vec<TraceEvent>,
        /// Per-app completions reported back to the stage.
        completed: Vec<u64>,
        clock: u64,
    }

    impl TestSink {
        fn new(apps: usize) -> Self {
            TestSink {
                completed: vec![0; apps],
                ..TestSink::default()
            }
        }
    }

    impl IngestSink for TestSink {
        fn run_until_before(&mut self, t: SimTime) {
            self.clock = self.clock.max(t.as_nanos().saturating_sub(1));
        }
        fn accept(&mut self, arrival: RequestArrival) {
            self.accepted.push(arrival);
        }
        fn completed_prefix(&mut self, app: usize) -> u64 {
            self.completed[app]
        }
        fn emit(&mut self, ev: TraceEvent) {
            self.events.push(ev);
        }
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn arrivals_merge_in_global_time_order_with_low_lane_tiebreak() {
        let (mut stage, mut streams) = IngestStage::new(3, &IngestConfig::default());
        let mut sink = TestSink::new(3);
        // Lane 2 offers earliest, then a three-way tie at 50 ns.
        streams[2].offer(t(10)).unwrap();
        streams[0].offer(t(50)).unwrap();
        streams[1].offer(t(50)).unwrap();
        streams[2].offer(t(50)).unwrap();
        streams[0].offer(t(60)).unwrap();
        for s in streams {
            s.close();
        }
        let p = stage.pump(&mut sink);
        assert!(p.drained);
        assert_eq!(p.processed, 5);
        let order: Vec<(usize, u64)> = sink
            .accepted
            .iter()
            .map(|a| (a.app, a.at.as_nanos()))
            .collect();
        assert_eq!(order, vec![(2, 10), (0, 50), (1, 50), (2, 50), (0, 60)]);
        // Dense per-tenant req numbering.
        assert_eq!(sink.accepted[0].req, 0);
        assert_eq!(sink.accepted[3].req, 1); // lane 2's second request
    }

    #[test]
    fn pump_waits_for_lagging_watermarks() {
        let (mut stage, mut streams) = IngestStage::new(2, &IngestConfig::default());
        let mut sink = TestSink::new(2);
        streams[0].offer(t(100)).unwrap();
        // Lane 1 is idle with watermark 0: the arrival at 100 is not yet
        // provably global-minimal.
        let p = stage.pump(&mut sink);
        assert_eq!(p.processed, 0);
        assert!(!p.drained);
        // Watermark equal to the candidate still blocks (an equal-time
        // arrival on lane 1 would lose the tie to... no — lane 1 > lane 0
        // — but the rule is uniform and strict for idle lanes).
        streams[1].advance(t(100));
        assert_eq!(stage.pump(&mut sink).processed, 0);
        // Strictly past it: the arrival settles.
        streams[1].advance(t(101));
        assert_eq!(stage.pump(&mut sink).processed, 1);
        assert_eq!(sink.accepted.len(), 1);
        // And the clock advanced to just before the remaining bound (the
        // lane-0 watermark at 100 — exclusive, so events settle at 99).
        assert_eq!(sink.clock, 99);
    }

    #[test]
    fn rate_limit_sheds_and_accounts_deterministically() {
        let cfg = IngestConfig {
            rate: Some(RateLimit {
                tokens_per_sec: 1000, // refills 1 token per ms
                burst: 2,
            }),
            ..IngestConfig::default()
        };
        let (mut stage, mut streams) = IngestStage::new(1, &cfg);
        let mut sink = TestSink::new(1);
        // Burst of 3 at t=0: two admitted, one rate-shed.
        for _ in 0..3 {
            streams[0].offer(t(0)).unwrap();
        }
        // 1 ms later one token has refilled.
        streams[0].offer(t(1_000_000)).unwrap();
        streams[0].offer(t(1_000_000)).unwrap();
        for s in streams {
            s.close();
        }
        stage.pump(&mut sink);
        let st = stage.tenant_stats(0);
        assert_eq!(st.offered, 5);
        assert_eq!(st.admitted, 3);
        assert_eq!(st.shed_rate_limited, 2);
        assert_eq!(st.shed_backpressure, 0);
        assert_eq!(st.admitted + st.shed(), st.offered, "conservation");
        // seq is dense over offered; req dense over admitted.
        let seqs: Vec<u64> =
            sink.events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::RequestAdmitted { seq, .. }
                    | TraceEvent::RequestShed { seq, .. } => Some(*seq),
                    _ => None,
                })
                .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        let reqs: Vec<u64> = sink.accepted.iter().map(|a| a.req as u64).collect();
        assert_eq!(reqs, vec![0, 1, 2]);
    }

    #[test]
    fn backpressure_sheds_until_completions_catch_up() {
        let cfg = IngestConfig {
            max_outstanding: Some(2),
            ..IngestConfig::default()
        };
        let (mut stage, mut streams) = IngestStage::new(1, &cfg);
        let mut sink = TestSink::new(1);
        for i in 0..4u64 {
            streams[0].offer(t(10 * (i + 1))).unwrap();
        }
        streams[0].advance(t(1000));
        stage.pump(&mut sink);
        let st = stage.tenant_stats(0);
        assert_eq!(st.admitted, 2);
        assert_eq!(st.shed_backpressure, 2);
        assert!(matches!(
            sink.events
                .iter()
                .find(|e| matches!(e, TraceEvent::BackpressureOn { .. })),
            Some(TraceEvent::BackpressureOn { outstanding: 2, .. })
        ));
        // Completions free the bound; the Off transition is emitted on the
        // next arrival.
        sink.completed[0] = 2;
        streams[0].offer(t(2000)).unwrap();
        for s in streams {
            s.close();
        }
        stage.pump(&mut sink);
        let st = stage.tenant_stats(0);
        assert_eq!(st.admitted, 3);
        assert!(sink
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::BackpressureOff { .. })));
    }

    #[test]
    fn full_ring_pushes_back_without_loss() {
        let cfg = IngestConfig {
            ring_capacity: 2,
            ..IngestConfig::default()
        };
        let (mut stage, mut streams) = IngestStage::new(1, &cfg);
        let mut sink = TestSink::new(1);
        streams[0].offer(t(1)).unwrap();
        streams[0].offer(t(2)).unwrap();
        assert_eq!(streams[0].offer(t(3)), Err(t(3)), "full ring hands back");
        stage.pump(&mut sink);
        streams[0].offer(t(3)).unwrap();
        for s in streams {
            s.close();
        }
        stage.pump(&mut sink);
        assert_eq!(stage.tenant_stats(0).offered, 3);
        assert_eq!(sink.accepted.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_offer_panics() {
        let (_stage, mut streams) = IngestStage::new(1, &IngestConfig::default());
        streams[0].offer(t(100)).unwrap();
        let _ = streams[0].offer(t(50));
    }

    #[test]
    fn token_bucket_is_integer_exact() {
        let mut b = TokenBucket::new(RateLimit {
            tokens_per_sec: 3,
            burst: 1,
        });
        assert!(b.admit(0)); // starts full
        assert!(!b.admit(0));
        // 3 tokens/s → one token every 333_333_333.33 ns; integer
        // nanotoken math admits at exactly the ceiling instant.
        assert!(!b.admit(333_333_333));
        assert!(b.admit(333_333_334));
    }

    #[test]
    fn cross_thread_offers_reach_the_stage() {
        let (mut stage, mut streams) = IngestStage::new(2, &IngestConfig::default());
        let mut sink = TestSink::new(2);
        let s1 = streams.pop().unwrap_or_else(|| unreachable!());
        let s0 = streams.pop().unwrap_or_else(|| unreachable!());
        std::thread::scope(|scope| {
            for (mut s, base) in [(s0, 0u64), (s1, 5u64)] {
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        s.offer_blocking(t(base + i * 10));
                    }
                    s.close();
                });
            }
            loop {
                let p = stage.pump(&mut sink);
                if p.drained {
                    break;
                }
                if p.processed == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        assert_eq!(sink.accepted.len(), 2000);
        assert!(
            sink.accepted.windows(2).all(|w| w[0].at <= w[1].at),
            "global time order"
        );
    }
}
