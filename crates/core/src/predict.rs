//! The execution configuration determiner (§4.4): the configuration
//! space, the two kernel-squad performance estimators, and the search for
//! the fastest configuration.
//!
//! For a squad with `K` participating requests on a GPU profiled at `N`
//! partitions, the space is:
//!
//! * **NSP** — no spatial restriction; predicted with the
//!   *workload-equivalence* estimator (Eq. 2), and
//! * **SP** — every composition of the `N` partitions into `K` positive
//!   parts (`C(N−1, K−1)` configurations); each predicted with the
//!   *interference-free* estimator (Eq. 1).
//!
//! With `N = 18` and two active requests that is `17 + 1 = 18` candidates,
//! matching the paper.

use sim_core::SimDuration;

use crate::deploy::DeployedApp;
use crate::squad::Squad;
use gpu_sim::{Channel, ChannelDemand, ChannelModel, ChannelParams, NUM_CHANNELS};
use profiler::PARTITIONS;

/// The execution configuration selected for one squad.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecConfig {
    /// No spatial restriction: all kernels contend freely (Fig. 7a).
    Nsp,
    /// Spatial partitioning: `partitions[i]` is the number of 1/N GPU
    /// slices assigned to the squad's `i`-th entry (Fig. 7b); the runtime
    /// upgrades this to semi-SP with the split ratio (Fig. 7c).
    Sp {
        /// Per-entry partition counts, aligned with `Squad::entries`;
        /// each ≥ 1 and summing to the total partition count.
        partitions: Vec<u32>,
    },
}

impl ExecConfig {
    /// The SM cap for entry `i` under this config, or `None` for NSP.
    ///
    /// Caps round to the nearest SM, mirroring how the profiler lays out
    /// its partition grid (so runtime caps land on profiled points even
    /// when `num_sms` is not a multiple of the partition count).
    pub fn sm_cap(&self, entry: usize, num_sms: u32) -> Option<u32> {
        match self {
            ExecConfig::Nsp => None,
            ExecConfig::Sp { partitions } => {
                // Degenerate inputs (entry beyond the partition vector, a
                // zero-SM device) fall back to "no cap" / 1 SM instead of
                // panicking: the runtime treats both as unrestricted-ish.
                let parts = *partitions.get(entry)?;
                let total: u32 = partitions.iter().sum::<u32>().max(1);
                let num_sms = num_sms.max(1);
                let exact = parts as f64 * num_sms as f64 / total as f64;
                Some((exact.round() as u32).clamp(1, num_sms))
            }
        }
    }
}

/// Eq. 1 — the interference-free predictor for strictly partitioned
/// squads: the squad lasts as long as the slowest request's stacked-up
/// kernel durations at its partition.
pub fn predict_interference_free(
    squad: &Squad,
    apps: &[DeployedApp],
    partitions: &[u32],
) -> SimDuration {
    assert_eq!(
        squad.entries.len(),
        partitions.len(),
        "one partition count per squad entry"
    );
    let mut worst = SimDuration::ZERO;
    for (entry, &parts) in squad.entries.iter().zip(partitions) {
        assert!(parts >= 1 && (parts as usize) <= PARTITIONS);
        let part_idx = parts as usize - 1;
        let total = stacked_duration(&apps[entry.app], part_idx, &entry.kernels);
        worst = worst.max(total);
    }
    worst
}

/// The contiguous ascending range `[first, last+1)` covered by `kernels`,
/// or `None` when the selection has gaps or is out of order. Squads select
/// kernels as in-order contiguous ranges, so the fast path is the norm.
fn contiguous_range(kernels: &[usize]) -> Option<(usize, usize)> {
    let first = *kernels.first()?;
    kernels
        .windows(2)
        .all(|w| w[1] == w[0] + 1)
        .then_some((first, first + kernels.len()))
}

/// `Σ t[partition][k]` over `kernels`: O(1) via the profile's prefix table
/// when the selection is contiguous, the naive per-kernel sum otherwise.
/// Both paths are u64-nanosecond additions and agree bit-for-bit.
fn stacked_duration(app: &DeployedApp, partition: usize, kernels: &[usize]) -> SimDuration {
    match contiguous_range(kernels) {
        Some((start, end)) => app.stacked_duration(partition, start, end),
        None => kernels
            .iter()
            .map(|&k| app.profile.kernel_duration(partition, k))
            .sum(),
    }
}

/// Eq. 2 — the workload-equivalence predictor for unrestricted squads:
/// kernels are walked breadth-first over requests; each overlap row is
/// modelled as sequential execution where every kernel runs at the speed
/// it would have given the row's total natural SM demand `Σ_j d_i^j`.
pub fn predict_workload_equivalence(
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
) -> SimDuration {
    let q = squad
        .entries
        .iter()
        .map(|e| e.kernels.len())
        .max()
        .unwrap_or(0);
    let mut total = SimDuration::ZERO;
    for i in 0..q {
        // The row's aggregate natural SM demand (as a fraction of the GPU).
        let mut demand_frac = 0.0;
        for e in &squad.entries {
            if let Some(&k) = e.kernels.get(i) {
                demand_frac += apps[e.app].profile.d_frac[k];
            }
        }
        // `max(1)` guards the zero-SM degenerate device (clamp panics when
        // its bounds invert).
        let demand_sms = (demand_frac * num_sms as f64).clamp(1.0, num_sms.max(1) as f64);
        for e in &squad.entries {
            if let Some(&k) = e.kernels.get(i) {
                let profile = &apps[e.app].profile;
                let d = if profile.kernels[k].kind.is_compute() {
                    profile.duration_at_sms(k, demand_sms)
                } else {
                    // Memory-management kernels are added at their profiled
                    // duration regardless of the SM demand.
                    profile.kernel_duration(PARTITIONS - 1, k)
                };
                total += d;
            }
        }
    }
    total
}

/// The determiner's verdict for one squad.
#[derive(Clone, Debug)]
pub struct ConfigChoice {
    /// The winning configuration.
    pub config: ExecConfig,
    /// Its predicted squad duration.
    pub predicted: SimDuration,
    /// Number of candidate configurations evaluated.
    pub evaluated: usize,
    /// Number of SP compositions skipped by the branch-and-bound cut
    /// (0 on the exhaustive and hill-climbing paths). For any squad,
    /// `evaluated + pruned` equals the exhaustive candidate count, and the
    /// chosen configuration is identical to the exhaustive search's.
    pub pruned: usize,
}

/// Searches the configuration space for the fastest execution (§4.4.2).
///
/// For up to [`EXACT_SEARCH_MAX_APPS`] participating requests the SP space
/// is searched exactly with a branch-and-bound cut (see
/// [`determine_config_exhaustive`] for the uncut twin — both return the
/// same configuration); beyond that a quota-proportional seed plus
/// hill-climbing is used (the paper only determines optimal partitions at
/// runtime for small squads; REEF+ cannot do this at all, §6.4).
pub fn determine_config(squad: &Squad, apps: &[DeployedApp], num_sms: u32) -> ConfigChoice {
    determine_config_inner(squad, apps, num_sms, true)
}

/// [`determine_config`] with the branch-and-bound cut disabled: every SP
/// composition is evaluated. Exists as the differential twin proving the
/// pruned search exact (`same config, same prediction, evaluated + pruned
/// = exhaustive evaluated`), and as the baseline for the
/// `determiner_search` benchmark.
pub fn determine_config_exhaustive(
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
) -> ConfigChoice {
    determine_config_inner(squad, apps, num_sms, false)
}

fn determine_config_inner(
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
    prune: bool,
) -> ConfigChoice {
    let k = squad.entries.len();
    assert!(
        k <= PARTITIONS,
        "a squad cannot have more participants ({k}) than SM partitions ({PARTITIONS})"
    );
    if k == 0 {
        return ConfigChoice {
            config: ExecConfig::Nsp,
            predicted: SimDuration::ZERO,
            evaluated: 0,
            pruned: 0,
        };
    }

    let nsp = predict_workload_equivalence(squad, apps, num_sms);
    if k == 1 {
        // A solo squad always runs unrestricted on the whole GPU.
        return ConfigChoice {
            config: ExecConfig::Nsp,
            predicted: nsp,
            evaluated: 1,
            pruned: 0,
        };
    }

    // Precompute per-entry stacked durations at every partition size so
    // each SP candidate costs O(K). Each cell is an O(1) prefix-table
    // range sum for the usual contiguous kernel selections.
    let stacked: Vec<Vec<SimDuration>> = squad
        .entries
        .iter()
        .map(|e| {
            (0..PARTITIONS)
                .map(|p| stacked_duration(&apps[e.app], p, &e.kernels))
                .collect()
        })
        .collect();

    let eval_sp = |parts: &[u32]| -> SimDuration {
        parts
            .iter()
            .enumerate()
            .map(|(i, &p)| stacked[i][p as usize - 1])
            .max()
            .unwrap_or(SimDuration::ZERO)
    };

    let mut evaluated = 1; // NSP
    let mut pruned = 0usize;
    let mut best_sp: Option<(Vec<u32>, SimDuration)> = None;
    let consider =
        |parts: &[u32], dur: SimDuration, best: &mut Option<(Vec<u32>, SimDuration)>| match best {
            Some((_, d)) if *d <= dur => {}
            _ => *best = Some((parts.to_vec(), dur)),
        };

    if k <= EXACT_SEARCH_MAX_APPS {
        // Exact search over all compositions of PARTITIONS into k parts,
        // visited in the same lexicographic order as
        // [`enumerate_compositions`]; with `prune` set, subtrees whose
        // best possible completion already cannot beat the incumbent are
        // cut (see [`SpSearch::descend`]) — the argmin is provably
        // unchanged because `consider` only replaces on strictly smaller
        // durations.
        let mut search = SpSearch {
            stacked: &stacked,
            best_at_most: best_at_most(&stacked),
            k,
            prune,
            evaluated: 0,
            pruned: 0,
            best: None,
            parts: vec![1u32; k],
        };
        search.descend(0, PARTITIONS as u32, SimDuration::ZERO);
        evaluated += search.evaluated;
        pruned = search.pruned;
        best_sp = search.best;
    } else {
        // Quota-proportional seed + greedy hill climbing: repeatedly move
        // one slice from the entry with the most slack to the bottleneck.
        let quotas: Vec<f64> = squad.entries.iter().map(|e| apps[e.app].quota).collect();
        let mut parts = proportional_partitions(&quotas, PARTITIONS as u32);
        let mut dur = eval_sp(&parts);
        evaluated += 1;
        consider(&parts, dur, &mut best_sp);
        // Find the bottleneck entry (max stacked duration) each round; an
        // empty `parts` (degenerate squad) simply never enters the loop.
        while let Some((bottleneck, _)) = parts
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, stacked[i][p as usize - 1]))
            .max_by_key(|&(_, d)| d)
        {
            // Take a slice from the entry whose duration is smallest after
            // losing one (and that has a slice to spare).
            let donor = (0..k)
                .filter(|&i| i != bottleneck && parts[i] > 1)
                .min_by_key(|&i| stacked[i][parts[i] as usize - 2]);
            let Some(donor) = donor else { break };
            parts[donor] -= 1;
            parts[bottleneck] += 1;
            let new_dur = eval_sp(&parts);
            evaluated += 1;
            if new_dur >= dur {
                break;
            }
            dur = new_dur;
            consider(&parts, dur, &mut best_sp);
        }
    }

    match best_sp {
        Some((parts, dur)) if dur < nsp => ConfigChoice {
            config: ExecConfig::Sp { partitions: parts },
            predicted: dur,
            evaluated,
            pruned,
        },
        _ => ConfigChoice {
            config: ExecConfig::Nsp,
            predicted: nsp,
            evaluated,
            pruned,
        },
    }
}

/// Per-entry prefix minima of the stacked-duration tables:
/// `best_at_most[i][s-1]` is the fastest entry `i` can possibly run when
/// granted *at most* `s` partition slices. This is the branch-and-bound
/// lower bound for entries the composition prefix has not assigned yet —
/// exact without assuming the profiled tables are monotone in SMs.
fn best_at_most(stacked: &[Vec<SimDuration>]) -> Vec<Vec<SimDuration>> {
    stacked
        .iter()
        .map(|row| {
            let mut best = SimDuration::MAX;
            row.iter()
                .map(|&d| {
                    best = best.min(d);
                    best
                })
                .collect()
        })
        .collect()
}

/// Number of compositions of `total` into `slots` positive parts:
/// `C(total − 1, slots − 1)`. Used to account for every candidate a
/// branch-and-bound cut skips.
fn compositions(total: u32, slots: u32) -> usize {
    let (n, mut r) = ((total - 1) as u64, (slots - 1) as u64);
    r = r.min(n - r);
    let mut c = 1u64;
    for i in 0..r {
        c = c * (n - i) / (i + 1);
    }
    c as usize
}

/// Depth-first branch-and-bound over SP compositions.
struct SpSearch<'a> {
    /// `stacked[i][p-1]`: entry `i`'s stacked duration on `p` slices.
    stacked: &'a [Vec<SimDuration>],
    /// Prefix minima of `stacked` (see [`best_at_most`]).
    best_at_most: Vec<Vec<SimDuration>>,
    k: usize,
    prune: bool,
    evaluated: usize,
    pruned: usize,
    best: Option<(Vec<u32>, SimDuration)>,
    parts: Vec<u32>,
}

impl SpSearch<'_> {
    /// Assigns slices to entry `idx` given `remaining` unassigned slices;
    /// `partial_max` is the duration floor set by entries `0..idx`.
    fn descend(&mut self, idx: usize, remaining: u32, partial_max: SimDuration) {
        if idx == self.k - 1 {
            self.parts[idx] = remaining;
            let dur = partial_max.max(self.stacked[idx][remaining as usize - 1]);
            self.evaluated += 1;
            match &self.best {
                Some((_, d)) if *d <= dur => {}
                _ => self.best = Some((self.parts.clone(), dur)),
            }
            return;
        }
        let slots_after = (self.k - idx - 1) as u32;
        for p in 1..=(remaining - slots_after) {
            let new_max = partial_max.max(self.stacked[idx][p as usize - 1]);
            if self.prune {
                if let Some((_, incumbent)) = &self.best {
                    // Lower-bound any completion of this prefix: assigned
                    // entries contribute `new_max`; each unassigned entry
                    // runs at best with every spare slice granted to it.
                    let rem = remaining - p;
                    let max_share = (rem - (slots_after - 1)) as usize;
                    let mut bound = new_max;
                    for j in idx + 1..self.k {
                        bound = bound.max(self.best_at_most[j][max_share - 1]);
                    }
                    if bound >= *incumbent {
                        self.pruned += compositions(rem, slots_after);
                        continue;
                    }
                }
            }
            self.parts[idx] = p;
            self.descend(idx + 1, remaining - p, new_max);
        }
    }
}

/// Exact SP enumeration is used up to this many participating requests;
/// `C(17, 5) = 6188` candidates is still cheap.
pub const EXACT_SEARCH_MAX_APPS: usize = 6;

/// Memo key: SM count plus one `(app, first_kernel, kernel_count)` triple
/// per entry. Only valid for contiguous in-order kernel selections, where
/// the triple pins the selection exactly.
type MemoKey = (u32, Vec<(usize, usize, usize)>);

/// Entry cap for [`ConfigMemo`]; reaching it clears the map (recurring
/// squads repopulate it immediately, and an unbounded map could grow
/// without limit under adversarial workloads).
const MEMO_CAPACITY: usize = 4096;

/// Memoizes [`determine_config`] on the squad signature.
///
/// Steady-state workloads regenerate identical squads (same apps, same
/// kernel ranges) over and over; the determiner is a pure function of that
/// signature and the deployment, so recurring squads can skip the search
/// entirely. The cached [`ConfigChoice`] is returned verbatim — including
/// its `evaluated` count — so memoized and unmemoized runs are
/// indistinguishable from the outside.
///
/// A memo is only sound for a fixed deployment: it must not outlive the
/// `apps` slice it was populated against (each [`crate::BlessDriver`]
/// owns its own).
#[derive(Debug, Default)]
pub struct ConfigMemo {
    map: std::collections::HashMap<MemoKey, ConfigChoice>,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the full search (including unmemoizable squads).
    pub misses: u64,
}

impl ConfigMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`determine_config`] with memoization: answers recurring squad
/// signatures from `memo` and falls back to the full search (caching the
/// result) otherwise. Non-contiguous kernel selections are never cached.
pub fn determine_config_memo(
    memo: &mut ConfigMemo,
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
) -> ConfigChoice {
    let signature = squad
        .entries
        .iter()
        .map(|e| contiguous_range(&e.kernels).map(|(start, end)| (e.app, start, end - start)))
        .collect::<Option<Vec<_>>>();
    let Some(sig) = signature else {
        memo.misses += 1;
        return determine_config(squad, apps, num_sms);
    };
    let key: MemoKey = (num_sms, sig);
    if let Some(choice) = memo.map.get(&key) {
        memo.hits += 1;
        return choice.clone();
    }
    memo.misses += 1;
    let choice = determine_config(squad, apps, num_sms);
    if memo.map.len() >= MEMO_CAPACITY {
        memo.map.clear();
    }
    memo.map.insert(key, choice.clone());
    choice
}

// ---------------------------------------------------------------------------
// Channel-aware estimators (DESIGN.md §5j).
//
// Under `ChannelModel::PerResource` the engine slows co-running kernels by
// the bottleneck max of per-channel contention curves; the two estimators
// below feed that same signal into the determiner so `determine_config`
// sees channel-aware estimates. Under `ChannelModel::Scalar` every
// `_model` entry point delegates to the original function, bit-for-bit —
// so scalar deployments (the default) are untouched.
// ---------------------------------------------------------------------------

/// Mean per-channel demand of one squad entry's *compute* kernels (the
/// demand vector the entry presses on shared channels while its squad
/// runs). Entries with no compute kernels press on nothing.
fn entry_mean_demand(app: &DeployedApp, kernels: &[usize]) -> ChannelDemand {
    let mut sum = [0.0f64; NUM_CHANNELS];
    let mut n = 0u32;
    for &k in kernels {
        let desc = &app.profile.kernels[k];
        if desc.kind.is_compute() {
            for (s, d) in sum.iter_mut().zip(&desc.demand.0) {
                *s += d;
            }
            n += 1;
        }
    }
    if n > 0 {
        for s in &mut sum {
            *s /= n as f64;
        }
    }
    ChannelDemand(sum)
}

/// Eq. 1 with per-resource channels: each entry's stacked duration is
/// inflated by the cross-partition contention it suffers on *shared*
/// channels (L2, DRAM-BW, PCIe). The compute channel is zeroed: SM
/// partitioning is exactly the mechanism that removes compute-issue
/// contention, which is why SP squads exist at all.
pub fn predict_interference_free_channels(
    squad: &Squad,
    apps: &[DeployedApp],
    partitions: &[u32],
    params: &ChannelParams,
) -> SimDuration {
    assert_eq!(
        squad.entries.len(),
        partitions.len(),
        "one partition count per squad entry"
    );
    let total_parts: u32 = partitions.iter().sum::<u32>().max(1);
    let mut traffic = [0.0f64; NUM_CHANNELS];
    let mut worst = SimDuration::ZERO;
    // First pass: aggregate traffic from every entry's mean demand,
    // weighted by its share of the GPU.
    for (entry, &parts) in squad.entries.iter().zip(partitions) {
        let share = parts as f64 / total_parts as f64;
        let mean = entry_mean_demand(&apps[entry.app], &entry.kernels);
        for (t, d) in traffic.iter_mut().zip(&mean.0) {
            *t += d * share;
        }
    }
    // Hard SM partitions isolate the compute channel.
    traffic[Channel::Compute as usize] = 0.0;
    for (entry, &parts) in squad.entries.iter().zip(partitions) {
        assert!(parts >= 1 && (parts as usize) <= PARTITIONS);
        let part_idx = parts as usize - 1;
        let share = parts as f64 / total_parts as f64;
        let mean = entry_mean_demand(&apps[entry.app], &entry.kernels);
        let slow = params.slowdown(&mean, share, &traffic);
        let total = stacked_duration(&apps[entry.app], part_idx, &entry.kernels).mul_f64(slow);
        worst = worst.max(total);
    }
    worst
}

/// Eq. 2 with per-resource channels: each overlap row accumulates
/// per-channel traffic from its kernels' demand vectors (shares from the
/// profiled natural demand, normalized down when the row oversubscribes
/// the GPU) and every kernel's row duration is inflated by its own
/// bottleneck-channel slowdown.
pub fn predict_workload_equivalence_channels(
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
    params: &ChannelParams,
) -> SimDuration {
    let q = squad
        .entries
        .iter()
        .map(|e| e.kernels.len())
        .max()
        .unwrap_or(0);
    let mut total = SimDuration::ZERO;
    for i in 0..q {
        let mut demand_frac = 0.0;
        for e in &squad.entries {
            if let Some(&k) = e.kernels.get(i) {
                demand_frac += apps[e.app].profile.d_frac[k];
            }
        }
        // When the row wants more than the whole GPU, shares shrink
        // proportionally (the hardware cannot grant more than 100%).
        let scale = if demand_frac > 1.0 {
            1.0 / demand_frac
        } else {
            1.0
        };
        let mut traffic = [0.0f64; NUM_CHANNELS];
        for e in &squad.entries {
            if let Some(&k) = e.kernels.get(i) {
                let profile = &apps[e.app].profile;
                if profile.kernels[k].kind.is_compute() {
                    let share = profile.d_frac[k] * scale;
                    for (t, d) in traffic.iter_mut().zip(&profile.kernels[k].demand.0) {
                        *t += d * share;
                    }
                }
            }
        }
        let demand_sms = (demand_frac * num_sms as f64).clamp(1.0, num_sms.max(1) as f64);
        for e in &squad.entries {
            if let Some(&k) = e.kernels.get(i) {
                let profile = &apps[e.app].profile;
                let d = if profile.kernels[k].kind.is_compute() {
                    let share = profile.d_frac[k] * scale;
                    let slow = params.slowdown(&profile.kernels[k].demand, share, &traffic);
                    profile.duration_at_sms(k, demand_sms).mul_f64(slow)
                } else {
                    profile.kernel_duration(PARTITIONS - 1, k)
                };
                total += d;
            }
        }
    }
    total
}

/// Model-dispatching Eq. 1: scalar delegates to
/// [`predict_interference_free`] unchanged.
pub fn predict_interference_free_model(
    squad: &Squad,
    apps: &[DeployedApp],
    partitions: &[u32],
    model: &ChannelModel,
) -> SimDuration {
    match model {
        ChannelModel::Scalar => predict_interference_free(squad, apps, partitions),
        ChannelModel::PerResource(p) => {
            predict_interference_free_channels(squad, apps, partitions, p)
        }
    }
}

/// Model-dispatching Eq. 2: scalar delegates to
/// [`predict_workload_equivalence`] unchanged.
pub fn predict_workload_equivalence_model(
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
    model: &ChannelModel,
) -> SimDuration {
    match model {
        ChannelModel::Scalar => predict_workload_equivalence(squad, apps, num_sms),
        ChannelModel::PerResource(p) => {
            predict_workload_equivalence_channels(squad, apps, num_sms, p)
        }
    }
}

/// [`determine_config`] under an explicit interference model: scalar
/// delegates to the original search (bit-identical, pruning intact);
/// per-resource evaluates candidates with the channel-aware estimators.
///
/// The per-resource SP search is exhaustive up to
/// [`EXACT_SEARCH_MAX_APPS`] — the branch-and-bound cut is *not* applied
/// because the cross-partition slowdown breaks the stacked-duration lower
/// bound — and falls back to the proportional-seed hill climb beyond
/// that, mirroring the scalar path's shape.
pub fn determine_config_model(
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
    model: &ChannelModel,
) -> ConfigChoice {
    match model {
        ChannelModel::Scalar => determine_config(squad, apps, num_sms),
        ChannelModel::PerResource(p) => determine_config_channels(squad, apps, num_sms, p),
    }
}

fn determine_config_channels(
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
    params: &ChannelParams,
) -> ConfigChoice {
    let k = squad.entries.len();
    assert!(
        k <= PARTITIONS,
        "a squad cannot have more participants ({k}) than SM partitions ({PARTITIONS})"
    );
    if k == 0 {
        return ConfigChoice {
            config: ExecConfig::Nsp,
            predicted: SimDuration::ZERO,
            evaluated: 0,
            pruned: 0,
        };
    }
    let nsp = predict_workload_equivalence_channels(squad, apps, num_sms, params);
    if k == 1 {
        return ConfigChoice {
            config: ExecConfig::Nsp,
            predicted: nsp,
            evaluated: 1,
            pruned: 0,
        };
    }

    let stacked: Vec<Vec<SimDuration>> = squad
        .entries
        .iter()
        .map(|e| {
            (0..PARTITIONS)
                .map(|p| stacked_duration(&apps[e.app], p, &e.kernels))
                .collect()
        })
        .collect();
    let means: Vec<ChannelDemand> = squad
        .entries
        .iter()
        .map(|e| entry_mean_demand(&apps[e.app], &e.kernels))
        .collect();

    // Channel-aware SP evaluation sharing the precomputed stacks: the
    // same math as `predict_interference_free_channels`, O(K) per
    // candidate.
    let eval_sp = |parts: &[u32]| -> SimDuration {
        let total_parts: u32 = parts.iter().sum::<u32>().max(1);
        let mut traffic = [0.0f64; NUM_CHANNELS];
        for (mean, &p) in means.iter().zip(parts) {
            let share = p as f64 / total_parts as f64;
            for (t, d) in traffic.iter_mut().zip(&mean.0) {
                *t += d * share;
            }
        }
        traffic[Channel::Compute as usize] = 0.0;
        let mut worst = SimDuration::ZERO;
        for (i, &p) in parts.iter().enumerate() {
            let share = p as f64 / total_parts as f64;
            let slow = params.slowdown(&means[i], share, &traffic);
            worst = worst.max(stacked[i][p as usize - 1].mul_f64(slow));
        }
        worst
    };

    let mut evaluated = 1; // NSP
    let mut best_sp: Option<(Vec<u32>, SimDuration)> = None;
    let consider =
        |parts: &[u32], dur: SimDuration, best: &mut Option<(Vec<u32>, SimDuration)>| match best {
            Some((_, d)) if *d <= dur => {}
            _ => *best = Some((parts.to_vec(), dur)),
        };

    if k <= EXACT_SEARCH_MAX_APPS {
        let mut parts = vec![1u32; k];
        enumerate_compositions(PARTITIONS as u32, k, &mut parts, 0, &mut |p| {
            evaluated += 1;
            consider(p, eval_sp(p), &mut best_sp);
        });
    } else {
        let quotas: Vec<f64> = squad.entries.iter().map(|e| apps[e.app].quota).collect();
        let mut parts = proportional_partitions(&quotas, PARTITIONS as u32);
        let mut dur = eval_sp(&parts);
        evaluated += 1;
        consider(&parts, dur, &mut best_sp);
        while let Some((bottleneck, _)) = parts
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, stacked[i][p as usize - 1]))
            .max_by_key(|&(_, d)| d)
        {
            let donor = (0..k)
                .filter(|&i| i != bottleneck && parts[i] > 1)
                .min_by_key(|&i| stacked[i][parts[i] as usize - 2]);
            let Some(donor) = donor else { break };
            parts[donor] -= 1;
            parts[bottleneck] += 1;
            let new_dur = eval_sp(&parts);
            evaluated += 1;
            if new_dur >= dur {
                break;
            }
            dur = new_dur;
            consider(&parts, dur, &mut best_sp);
        }
    }

    match best_sp {
        Some((parts, dur)) if dur < nsp => ConfigChoice {
            config: ExecConfig::Sp { partitions: parts },
            predicted: dur,
            evaluated,
            pruned: 0,
        },
        _ => ConfigChoice {
            config: ExecConfig::Nsp,
            predicted: nsp,
            evaluated,
            pruned: 0,
        },
    }
}

/// [`determine_config_memo`] under an explicit interference model. The
/// memo key does not encode the model: a memo belongs to one driver on
/// one deployment, whose spec (and thus model) is fixed for its lifetime,
/// so entries cannot collide across models.
pub fn determine_config_memo_model(
    memo: &mut ConfigMemo,
    squad: &Squad,
    apps: &[DeployedApp],
    num_sms: u32,
    model: &ChannelModel,
) -> ConfigChoice {
    let signature = squad
        .entries
        .iter()
        .map(|e| contiguous_range(&e.kernels).map(|(start, end)| (e.app, start, end - start)))
        .collect::<Option<Vec<_>>>();
    let Some(sig) = signature else {
        memo.misses += 1;
        return determine_config_model(squad, apps, num_sms, model);
    };
    let key: MemoKey = (num_sms, sig);
    if let Some(choice) = memo.map.get(&key) {
        memo.hits += 1;
        return choice.clone();
    }
    memo.misses += 1;
    let choice = determine_config_model(squad, apps, num_sms, model);
    if memo.map.len() >= MEMO_CAPACITY {
        memo.map.clear();
    }
    memo.map.insert(key, choice.clone());
    choice
}

/// Reference enumerator of compositions of `total` into `k` positive
/// parts, in the lexicographic order [`SpSearch`] visits them. Doubles as
/// the specification the pruned search's unit tests check against and as
/// the exhaustive walk of the channel-aware determiner.
fn enumerate_compositions(
    total: u32,
    k: usize,
    parts: &mut Vec<u32>,
    idx: usize,
    f: &mut impl FnMut(&[u32]),
) {
    let remaining_slots = (k - idx - 1) as u32;
    if idx == k - 1 {
        parts[idx] = total;
        f(parts);
        return;
    }
    for p in 1..=(total - remaining_slots) {
        parts[idx] = p;
        enumerate_compositions(total - p, k, parts, idx + 1, f);
    }
}

/// Divides `total` slices proportionally to the quotas, each entry ≥ 1.
fn proportional_partitions(quotas: &[f64], total: u32) -> Vec<u32> {
    if quotas.is_empty() {
        return Vec::new();
    }
    let k = quotas.len() as u32;
    let sum: f64 = quotas.iter().sum();
    // A zero/NaN quota sum (degenerate deployment) degrades to an equal
    // split rather than dividing by it.
    let share = |q: f64| if sum > 0.0 { q / sum } else { 1.0 / k as f64 };
    let mut parts: Vec<u32> = quotas
        .iter()
        .map(|&q| ((share(q) * total as f64).floor() as u32).max(1))
        .collect();
    // Fix up rounding drift.
    loop {
        let s: u32 = parts.iter().sum();
        if s == total {
            break;
        }
        if s < total {
            // Give the remainder to the largest-quota entry.
            let i = (0..quotas.len())
                .max_by(|&a, &b| quotas[a].total_cmp(&quotas[b]))
                .unwrap_or(0);
            parts[i] += 1;
        } else {
            let i = (0..quotas.len())
                .filter(|&i| parts[i] > 1)
                .max_by_key(|&i| parts[i])
                .unwrap_or(0);
            if parts[i] <= 1 {
                break;
            }
            parts[i] -= 1;
        }
    }
    debug_assert_eq!(parts.iter().sum::<u32>(), total.max(k));
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::squad::SquadEntry;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::GpuSpec;
    use profiler::ProfiledApp;

    fn deploy(kind: ModelKind, quota: f64) -> DeployedApp {
        let profile =
            ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100());
        DeployedApp::new(profile, quota, None)
    }

    fn squad_of(apps: &[DeployedApp], per_app: usize) -> Squad {
        Squad {
            entries: apps
                .iter()
                .enumerate()
                .map(|(i, _)| SquadEntry {
                    app: i,
                    // Skip kernel 0 (the H2D copy) for clean compute squads.
                    kernels: (1..=per_app).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn composition_count_matches_formula() {
        // C(N-1, K-1) compositions for K parts of N.
        let mut parts = vec![1u32; 2];
        let mut n = 0;
        enumerate_compositions(18, 2, &mut parts, 0, &mut |_| n += 1);
        assert_eq!(n, 17); // C(17,1)
        let mut parts = vec![1u32; 3];
        let mut n = 0;
        enumerate_compositions(18, 3, &mut parts, 0, &mut |_| n += 1);
        assert_eq!(n, 136); // C(17,2)
    }

    #[test]
    fn two_app_space_is_eighteen() {
        // Paper §4.4.1: with N=18 and 2 active requests, 17 SP + 1 NSP.
        let apps = vec![
            deploy(ModelKind::NasNet, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let squad = squad_of(&apps, 10);
        let exhaustive = determine_config_exhaustive(&squad, &apps, 108);
        assert_eq!(exhaustive.evaluated, 18);
        assert_eq!(exhaustive.pruned, 0);
        // The branch-and-bound cut must cover the same space: every
        // candidate is either evaluated or accounted for as pruned.
        let choice = determine_config(&squad, &apps, 108);
        assert_eq!(choice.evaluated + choice.pruned, 18);
        assert_eq!(choice.config, exhaustive.config);
        assert_eq!(choice.predicted, exhaustive.predicted);
    }

    /// The pruned determiner is a pure speedup: across a spread of squad
    /// shapes and sizes it returns the exhaustive argmin (same config,
    /// same prediction) while covering the full space via
    /// `evaluated + pruned` — and actually cuts work on the larger spaces.
    #[test]
    fn pruned_search_matches_exhaustive() {
        let kinds = [
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            ModelKind::NasNet,
            ModelKind::Bert,
            ModelKind::ResNet101,
            ModelKind::AlexNet,
        ];
        let mut saved_anywhere = false;
        for k in 2..=5usize {
            let apps: Vec<DeployedApp> = kinds[..k]
                .iter()
                .map(|&m| deploy(m, 1.0 / k as f64))
                .collect();
            for per_app in [3, 8, 14] {
                let squad = squad_of(&apps, per_app);
                let fast = determine_config(&squad, &apps, 108);
                let slow = determine_config_exhaustive(&squad, &apps, 108);
                assert_eq!(fast.config, slow.config, "k={k} per_app={per_app}");
                assert_eq!(fast.predicted, slow.predicted, "k={k} per_app={per_app}");
                assert_eq!(
                    fast.evaluated + fast.pruned,
                    slow.evaluated,
                    "k={k} per_app={per_app}: candidate accounting"
                );
                saved_anywhere |= fast.evaluated < slow.evaluated;
            }
        }
        assert!(saved_anywhere, "the cut never fired on any squad shape");
    }

    #[test]
    fn interference_free_is_max_of_stacks() {
        let apps = vec![
            deploy(ModelKind::Vgg11, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let squad = squad_of(&apps, 5);
        // Full GPU each (impossible config, but the math is the point):
        let d_both = predict_interference_free(&squad, &apps, &[9, 9]);
        let stack = |app: usize| -> SimDuration {
            (1..=5)
                .map(|k| apps[app].profile.kernel_duration(8, k))
                .sum()
        };
        assert_eq!(d_both, stack(0).max(stack(1)));
    }

    #[test]
    fn more_sms_for_bottleneck_reduces_prediction() {
        let apps = vec![
            deploy(ModelKind::NasNet, 0.5),
            deploy(ModelKind::Vgg11, 0.5),
        ];
        // NasNet gets 30 kernels, VGG gets 2: NasNet is the bottleneck.
        let squad = Squad {
            entries: vec![
                SquadEntry {
                    app: 0,
                    kernels: (1..=30).collect(),
                },
                SquadEntry {
                    app: 1,
                    kernels: vec![1, 2],
                },
            ],
        };
        let even = predict_interference_free(&squad, &apps, &[9, 9]);
        let skewed = predict_interference_free(&squad, &apps, &[14, 4]);
        assert!(skewed < even, "{skewed:?} vs {even:?}");
    }

    #[test]
    fn determiner_prefers_sp_for_balanced_compute_squads() {
        // Two compute-heavy requests: strict partitioning avoids the
        // sequentializing penalty of the hardware scheduler (Fig. 7).
        let apps = vec![deploy(ModelKind::NasNet, 0.5), deploy(ModelKind::Bert, 0.5)];
        let squad = squad_of(&apps, 25);
        let choice = determine_config(&squad, &apps, 108);
        match &choice.config {
            ExecConfig::Sp { partitions } => {
                assert_eq!(partitions.iter().sum::<u32>(), 18);
                assert!(partitions.iter().all(|&p| p >= 1));
            }
            ExecConfig::Nsp => panic!("expected SP for balanced squads"),
        }
    }

    #[test]
    fn solo_squads_run_nsp() {
        let apps = vec![deploy(ModelKind::ResNet50, 0.5)];
        let squad = squad_of(&apps, 10);
        let choice = determine_config(&squad, &apps, 108);
        assert_eq!(choice.config, ExecConfig::Nsp);
        assert_eq!(choice.evaluated, 1);
    }

    #[test]
    fn sm_cap_computation() {
        let cfg = ExecConfig::Sp {
            partitions: vec![9, 9],
        };
        assert_eq!(cfg.sm_cap(0, 108), Some(54));
        assert_eq!(ExecConfig::Nsp.sm_cap(0, 108), None);
        let cfg = ExecConfig::Sp {
            partitions: vec![13, 5],
        };
        assert_eq!(cfg.sm_cap(0, 108), Some(78));
        assert_eq!(cfg.sm_cap(1, 108), Some(30));
    }

    #[test]
    fn hill_climb_handles_many_apps() {
        let apps: Vec<DeployedApp> = (0..8)
            .map(|i| {
                deploy(
                    if i % 2 == 0 {
                        ModelKind::ResNet50
                    } else {
                        ModelKind::Vgg11
                    },
                    0.125,
                )
            })
            .collect();
        let squad = squad_of(&apps, 4);
        let choice = determine_config(&squad, &apps, 108);
        if let ExecConfig::Sp { partitions } = &choice.config {
            assert_eq!(partitions.len(), 8);
            assert_eq!(partitions.iter().sum::<u32>(), 18);
        }
        assert!(choice.evaluated < 1000, "hill climbing stays cheap");
    }

    #[test]
    fn workload_equivalence_sums_rows() {
        let apps = vec![deploy(ModelKind::Vgg11, 0.5)];
        let squad = Squad {
            entries: vec![SquadEntry {
                app: 0,
                kernels: vec![1, 2, 3],
            }],
        };
        let d = predict_workload_equivalence(&squad, &apps, 108);
        // A single request at its own demand: close to its full-speed sum.
        let full: SimDuration = (1..=3)
            .map(|k| apps[0].profile.kernel_duration(PARTITIONS - 1, k))
            .sum();
        let ratio = d.as_nanos() as f64 / full.as_nanos() as f64;
        assert!((1.0..1.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn proportional_partitions_respect_quotas() {
        let parts = proportional_partitions(&[0.1, 0.2, 0.3, 0.4], 18);
        assert_eq!(parts.iter().sum::<u32>(), 18);
        assert!(parts[3] > parts[0]);
        assert!(parts.iter().all(|&p| p >= 1));
    }

    #[test]
    fn proportional_partitions_survive_degenerate_quotas() {
        // Zero quota sum degrades to an equal split instead of dividing
        // by zero (NaN floors to 0 and would violate the >= 1 invariant).
        let parts = proportional_partitions(&[0.0, 0.0, 0.0], 18);
        assert_eq!(parts.iter().sum::<u32>(), 18);
        assert!(parts.iter().all(|&p| p >= 1));
        assert!(proportional_partitions(&[], 18).is_empty());
    }

    #[test]
    fn sm_cap_guards_degenerate_inputs() {
        let cfg = ExecConfig::Sp {
            partitions: vec![9, 9],
        };
        // Entry index beyond the partition vector: no cap, no panic.
        assert_eq!(cfg.sm_cap(5, 108), None);
        // A zero-SM device still yields a positive cap.
        assert_eq!(cfg.sm_cap(0, 0), Some(1));
    }

    #[test]
    fn workload_equivalence_tolerates_zero_sm_device() {
        let apps = vec![deploy(ModelKind::Vgg11, 0.5)];
        let squad = squad_of(&apps, 3);
        // Must not panic on the inverted clamp bounds; exact value is
        // meaningless on a zero-SM device.
        let _ = predict_workload_equivalence(&squad, &apps, 0);
    }

    #[test]
    fn empty_squad_determines_nsp() {
        let apps = vec![deploy(ModelKind::Vgg11, 1.0)];
        let choice = determine_config(&Squad::default(), &apps, 108);
        assert_eq!(choice.config, ExecConfig::Nsp);
        assert_eq!(choice.evaluated, 0);
    }

    // -- channel-aware estimators (DESIGN.md §5j) ---------------------------

    /// Every `_model` entry point under `ChannelModel::Scalar` is a pure
    /// passthrough: identical results, identical search accounting.
    #[test]
    fn scalar_model_dispatch_is_bit_exact() {
        let apps = vec![
            deploy(ModelKind::NasNet, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let squad = squad_of(&apps, 10);
        let model = ChannelModel::Scalar;
        assert_eq!(
            predict_interference_free_model(&squad, &apps, &[9, 9], &model),
            predict_interference_free(&squad, &apps, &[9, 9]),
        );
        assert_eq!(
            predict_workload_equivalence_model(&squad, &apps, 108, &model),
            predict_workload_equivalence(&squad, &apps, 108),
        );
        let dispatched = determine_config_model(&squad, &apps, 108, &model);
        let direct = determine_config(&squad, &apps, 108);
        assert_eq!(dispatched.config, direct.config);
        assert_eq!(dispatched.predicted, direct.predicted);
        assert_eq!(dispatched.evaluated, direct.evaluated);
        assert_eq!(dispatched.pruned, direct.pruned);
    }

    /// Eq. 1 zeroes the compute channel (SM partitioning is exactly the
    /// mechanism that removes compute-issue contention), so a parameter
    /// set whose only live channel is Compute reduces to the plain
    /// max-of-stacks — while the calibrated A100 curves, which press on
    /// DRAM-BW where profiled kernels actually have demand, inflate it.
    #[test]
    fn sp_prediction_isolates_compute_channel() {
        let apps = vec![
            deploy(ModelKind::Vgg11, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let squad = squad_of(&apps, 5);
        let compute_only = ChannelParams::matched_scalar(1.5, 0.30, 2.0, Channel::Compute);
        let plain = predict_interference_free(&squad, &apps, &[9, 9]);
        assert_eq!(
            predict_interference_free_channels(&squad, &apps, &[9, 9], &compute_only),
            plain,
        );
        let calibrated =
            predict_interference_free_channels(&squad, &apps, &[9, 9], &ChannelParams::a100());
        assert!(calibrated > plain, "{calibrated:?} vs {plain:?}");
    }

    /// Channel-aware Eq. 2 only ever *adds* contention inflation on top of
    /// the scalar row model (per-kernel slowdown is >= 1), so it dominates
    /// the scalar estimate on every squad shape.
    #[test]
    fn channel_workload_equivalence_dominates_scalar() {
        let kinds = [ModelKind::NasNet, ModelKind::Bert, ModelKind::Vgg11];
        let apps: Vec<DeployedApp> = kinds.iter().map(|&m| deploy(m, 1.0 / 3.0)).collect();
        for per_app in [3, 8, 14] {
            let squad = squad_of(&apps, per_app);
            let chan =
                predict_workload_equivalence_channels(&squad, &apps, 108, &ChannelParams::a100());
            let scalar = predict_workload_equivalence(&squad, &apps, 108);
            assert!(chan >= scalar, "per_app={per_app}: {chan:?} < {scalar:?}");
        }
    }

    /// The per-resource determiner returns a well-formed choice: full
    /// partition coverage for SP, a positive prediction, and the same
    /// candidate space as the scalar exhaustive walk (`pruned` stays 0 —
    /// the stacked-duration bound is invalid under slowdown inflation, so
    /// nothing is cut).
    #[test]
    fn channel_determiner_is_well_formed() {
        let apps = vec![deploy(ModelKind::NasNet, 0.5), deploy(ModelKind::Bert, 0.5)];
        let squad = squad_of(&apps, 25);
        let model = ChannelModel::PerResource(ChannelParams::a100());
        let choice = determine_config_model(&squad, &apps, 108, &model);
        assert!(choice.predicted > SimDuration::ZERO);
        assert_eq!(choice.pruned, 0);
        assert_eq!(choice.evaluated, 18); // NSP + C(17, 1) SP splits
        if let ExecConfig::Sp { partitions } = &choice.config {
            assert_eq!(partitions.len(), 2);
            assert_eq!(partitions.iter().sum::<u32>(), 18);
            assert!(partitions.iter().all(|&p| p >= 1));
        }
    }

    /// The channel determiner hill-climbs past `EXACT_SEARCH_MAX_APPS`
    /// instead of enumerating, mirroring the scalar path's shape.
    #[test]
    fn channel_determiner_hill_climbs_many_apps() {
        let apps: Vec<DeployedApp> = (0..8)
            .map(|i| {
                deploy(
                    if i % 2 == 0 {
                        ModelKind::ResNet50
                    } else {
                        ModelKind::Vgg11
                    },
                    0.125,
                )
            })
            .collect();
        let squad = squad_of(&apps, 4);
        let model = ChannelModel::PerResource(ChannelParams::a100());
        let choice = determine_config_model(&squad, &apps, 108, &model);
        if let ExecConfig::Sp { partitions } = &choice.config {
            assert_eq!(partitions.len(), 8);
            assert_eq!(partitions.iter().sum::<u32>(), 18);
        }
        assert!(choice.evaluated < 1000, "hill climbing stays cheap");
    }

    /// The memoized model dispatcher caches per-resource choices and
    /// returns them verbatim on recurring squad signatures.
    #[test]
    fn memo_model_caches_channel_choices() {
        let apps = vec![deploy(ModelKind::NasNet, 0.5), deploy(ModelKind::Bert, 0.5)];
        let squad = squad_of(&apps, 10);
        let model = ChannelModel::PerResource(ChannelParams::a100());
        let mut memo = ConfigMemo::new();
        let first = determine_config_memo_model(&mut memo, &squad, &apps, 108, &model);
        assert_eq!(memo.misses, 1);
        assert_eq!(memo.hits, 0);
        let second = determine_config_memo_model(&mut memo, &squad, &apps, 108, &model);
        assert_eq!(memo.hits, 1);
        assert_eq!(first.config, second.config);
        assert_eq!(first.predicted, second.predicted);
        // And the uncached search agrees with what the memo stored.
        let direct = determine_config_model(&squad, &apps, 108, &model);
        assert_eq!(first.config, direct.config);
        assert_eq!(first.predicted, direct.predicted);
    }
}
