//! Deployed applications: profiled data bound to a quota (and optional SLO).

use std::sync::Arc;

use profiler::ProfiledApp;
use sim_core::SimDuration;

/// One application as deployed on the GPU: its profile, its provisioned
/// quota, and (optionally) an explicit SLO target replacing the isolated
/// latency in the progress model (§6.5).
#[derive(Clone, Debug)]
pub struct DeployedApp {
    /// The offline profile (§4.2), shared cheaply across deployments and
    /// experiment runs.
    pub profile: Arc<ProfiledApp>,
    /// Provisioned GPU quota in `(0, 1]`.
    pub quota: f64,
    /// Partition index corresponding to the quota.
    pub partition: usize,
    /// Optional SLO target; `None` means the quota's isolated latency.
    pub slo_target: Option<SimDuration>,
}

impl DeployedApp {
    /// Binds a profile to a quota.
    ///
    /// # Panics
    ///
    /// Panics if `quota` is outside `(0, 1]`.
    pub fn new(
        profile: impl Into<Arc<ProfiledApp>>,
        quota: f64,
        slo_target: Option<SimDuration>,
    ) -> Self {
        assert!(quota > 0.0 && quota <= 1.0, "quota must be in (0,1]");
        let profile = profile.into();
        let partition = profile.partition_for_quota(quota);
        DeployedApp {
            profile,
            quota,
            partition,
            slo_target,
        }
    }

    /// `T[n%]`: the isolated latency at this app's quota.
    pub fn iso_latency(&self) -> SimDuration {
        self.profile.iso_latency[self.partition]
    }

    /// The latency target used by the progress model: the SLO if set,
    /// otherwise the isolated latency.
    pub fn target_latency(&self) -> SimDuration {
        self.slo_target.unwrap_or_else(|| self.iso_latency())
    }

    /// `t[n%][k]` at this app's quota partition.
    pub fn quota_kernel_duration(&self, kernel: usize) -> SimDuration {
        self.profile.kernel_duration(self.partition, kernel)
    }

    /// `τ[n%][k]` at this app's quota partition.
    pub fn quota_tau(&self, kernel: usize) -> SimDuration {
        self.profile.tau(self.partition, kernel)
    }

    /// Stacked duration `Σ t[partition][k]` for the contiguous kernel
    /// range `start..end`, in O(1) via the profile's prefix table (the hot
    /// query of the configuration determiner — squads select kernels as
    /// in-order contiguous ranges).
    pub fn stacked_duration(&self, partition: usize, start: usize, end: usize) -> SimDuration {
        self.profile.duration_range_sum(partition, start, end)
    }

    /// Predicted duration of kernel `k` under an optional SM cap: the
    /// interpolated profiled duration at the cap, or the full-partition
    /// duration when unrestricted. Shared by the squad balancer and the
    /// execution-configuration machinery.
    pub fn predicted_kernel_duration(&self, kernel: usize, cap: Option<u32>) -> SimDuration {
        match cap {
            Some(cap) => self.profile.duration_at_sms(kernel, cap as f64),
            None => self
                .profile
                .kernel_duration(profiler::PARTITIONS - 1, kernel),
        }
    }

    /// Stretch factor applied to the isolated schedule by the SLO target:
    /// `target / T[n%]` (1.0 in quota mode).
    pub fn schedule_stretch(&self) -> f64 {
        let iso = self.iso_latency().as_nanos() as f64;
        if iso <= 0.0 {
            return 1.0;
        }
        self.target_latency().as_nanos() as f64 / iso
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::GpuSpec;

    fn profile() -> ProfiledApp {
        ProfiledApp::profile(
            &AppModel::build(ModelKind::Vgg11, Phase::Inference),
            &GpuSpec::a100(),
        )
    }

    #[test]
    fn quota_maps_to_partition() {
        let d = DeployedApp::new(profile(), 0.5, None);
        assert_eq!(d.profile.partition_sms[d.partition], 54);
        assert_eq!(d.iso_latency(), d.profile.iso_latency[8]);
        assert_eq!(d.target_latency(), d.iso_latency());
        assert!((d.schedule_stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slo_target_stretches_schedule() {
        let p = profile();
        let iso = p.iso_latency[p.partition_for_quota(0.5)];
        let d = DeployedApp::new(p, 0.5, Some(iso * 2));
        assert!((d.schedule_stretch() - 2.0).abs() < 1e-9);
        assert_eq!(d.target_latency(), iso * 2);
    }

    #[test]
    #[should_panic(expected = "quota must be")]
    fn rejects_bad_quota() {
        DeployedApp::new(profile(), 1.5, None);
    }
}
