//! The BLESS runtime: multi-task scheduler + concurrent kernel manager
//! (§4.3, §4.5) as a [`HostDriver`].
//!
//! Each deployed application owns two device queues: one bound to an
//! unrestricted (default) context and one bound to a resizable MPS
//! SM-affinity context. The runtime proceeds squad by squad:
//!
//! 1. When requests are active and no squad is in flight, the multi-task
//!    scheduler generates a squad ([`crate::squad::generate_squad`]) and
//!    the configuration determiner picks NSP or an SM partitioning
//!    ([`crate::predict::determine_config`]).
//! 2. Under SP, the first `c%` of each entry's kernels (the split ratio)
//!    are launched into the app's restricted context; when they finish,
//!    the rear kernels are launched into the unrestricted context after a
//!    50 µs context-switch vacuum — the paper's semi-SP sharing (Fig. 7c).
//!    Under NSP everything goes to the unrestricted contexts.
//! 3. When the squad's last kernel finishes, a 20 µs squad-switch
//!    synchronization is charged and the next squad is scheduled.
//!
//! Scheduling work (6.7 µs per kernel, §6.9) is pipelined with the
//! previous squad's device execution: the next squad can only launch once
//! the background scheduler has had enough host time since the previous
//! launch — reproducing the paper's "overspending" hazard when kernels
//! are shorter than the per-kernel scheduling cost.

use std::collections::VecDeque;

use gpu_sim::{CtxId, CtxKind, FailedKernel, Gpu, HostDriver, KernelDone, QueueId, RequestArrival};
use metrics::{DegradeTransition, RequestLog, RobustnessReport, ShareMode};
use sim_core::trace::{TraceEvent, TraceSquadEntry};
use sim_core::{SimDuration, SimTime};

use crate::deploy::DeployedApp;
use crate::error::SchedError;
use crate::params::BlessParams;
use crate::predict::{determine_config_memo_model, ConfigChoice, ConfigMemo, ExecConfig};
use crate::squad::{generate_squad_into, scheduling_cost, ActiveRequest, Squad, SquadScratch};
use gpu_sim::KernelTableId;

// `PendingReq`/`ActiveReq` mirror `baselines::common`'s request-lifecycle
// types. They cannot be shared: `baselines` depends on this crate, and the
// BLESS lifecycle is interwoven with squad state in ways the baseline
// drivers' is not.
/// A request waiting in an application's task queue.
#[derive(Clone, Copy, Debug)]
struct PendingReq {
    req: usize,
    arrival: SimTime,
}

/// The request currently being served for one application.
#[derive(Clone, Copy, Debug)]
struct ActiveReq {
    req: usize,
    arrival: SimTime,
    next_kernel: usize,
}

/// Per-application execution state of the in-flight squad.
///
/// Kernels are fed to the device progressively, a small window at a time,
/// so that the squad can *drain* (stop feeding and end early) the moment a
/// new tenant's request arrives — the paper's "shrink instantly, lazily
/// wait for [launched kernels'] completion rather than preempting" (§3.3).
/// Selected kernels are always a consecutive run of the app's trace
/// (`first..first + count`), so the entry is a plain `Copy` range — no
/// per-squad kernel list is allocated or cloned.
#[derive(Clone, Copy, Debug)]
struct EntryRun {
    /// First selected kernel index (into the app's kernel trace).
    first: usize,
    /// Number of selected kernels.
    count: usize,
    /// Kernels `[0, split_at)` (relative to `first`) go to the restricted
    /// context, the rest to the unrestricted one (semi-SP).
    split_at: usize,
    /// Next offset in `first..first + count` to launch.
    next_to_launch: usize,
    /// Launched but unfinished kernels.
    inflight: usize,
    /// Head (restricted) kernels still unfinished.
    head_remaining: usize,
    /// Whether the context-switch vacuum for the tail was already charged.
    tail_started: bool,
    /// Predicted entry duration at the chosen configuration (recorded
    /// only when the watchdog is enabled; ZERO otherwise).
    predicted: SimDuration,
    /// When the entry's last kernel finished (for the drift watchdog).
    finished_at: Option<SimTime>,
}

/// One record of a completed squad (for the fine-grained analyses of
/// §6.6/Fig. 18).
#[derive(Clone, Debug)]
pub struct SquadRecord {
    /// When the squad's kernels were launched.
    pub launched_at: SimTime,
    /// When its last kernel finished.
    pub finished_at: SimTime,
    /// Participating apps and their kernel counts.
    pub per_app_kernels: Vec<(usize, usize)>,
    /// Whether the determiner chose spatial partitioning.
    pub spatial: bool,
    /// The SM caps per participating app under SP (empty for NSP).
    pub sm_caps: Vec<(usize, u32)>,
}

/// One request preserved in a tenant checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointReq {
    /// Per-driver request id (dense from 0 on the source driver).
    pub req: usize,
    /// Original arrival instant.
    pub arrival: SimTime,
}

/// Portable per-tenant snapshot of a quiesced driver's pending request
/// work, exported by [`BlessDriver::export_checkpoint`] — the driver half
/// of the drain-and-snapshot migration path (the engine half is
/// [`gpu_sim::DeviceCheckpoint`]; see DESIGN.md §5i).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantCheckpoint {
    /// App id on the source driver.
    pub app: usize,
    /// The request in flight at the barrier, if any. Its launched squads
    /// were abandoned with typed errors on the device; the request must
    /// be re-run from scratch wherever the tenant lands.
    pub in_flight: Option<CheckpointReq>,
    /// Requests still waiting in the task queue, FIFO order preserved.
    pub queued: Vec<CheckpointReq>,
    /// Degradation-ladder position at the barrier, carried so a migrated
    /// tenant resumes mid-ladder instead of resetting to semi-spatial.
    pub mode: ShareMode,
    /// Consecutive clean squads toward re-promotion at the barrier.
    pub clean_squads: u32,
}

impl TenantCheckpoint {
    /// Total requests preserved (in-flight plus queued).
    pub fn outstanding(&self) -> usize {
        usize::from(self.in_flight.is_some()) + self.queued.len()
    }
}

/// The BLESS scheduler, driving one GPU on behalf of its tenants.
pub struct BlessDriver {
    /// Deployment data, indexed by app id.
    pub apps: Vec<DeployedApp>,
    /// Runtime parameters.
    pub params: BlessParams,
    /// Arrival/completion log for metrics.
    pub log: RequestLog,
    /// Completed squads (recorded when `record_squads` is set).
    pub squad_log: Vec<SquadRecord>,
    /// Record per-squad details (off by default; costs memory).
    pub record_squads: bool,

    queue_free: Vec<QueueId>,
    queue_restricted: Vec<QueueId>,
    ctx_restricted: Vec<CtxId>,
    /// Per-app engine kernel table (the app's profiled trace, registered
    /// in `on_start`); all steady-state launches go by `(table, index)`.
    tables: Vec<KernelTableId>,
    task_queues: Vec<VecDeque<PendingReq>>,
    active: Vec<Option<ActiveReq>>,
    squad: Option<SquadState>,
    /// Retired squad state recycled into the next launch (its `per_app`
    /// and `sm_caps` buffers keep their capacity).
    squad_pool: Option<SquadState>,
    /// Scratch: active-request snapshot reused every scheduling round.
    actives_buf: Vec<ActiveRequest>,
    /// Scratch: squad generation buffers (candidates + spare kernel Vecs).
    squad_scratch: SquadScratch,
    /// Scratch: the squad being built/launched this round.
    squad_buf: Squad,
    /// Scratch: per-entry predicted totals for squad trimming.
    totals_buf: Vec<f64>,
    /// Scratch: crash-retry drain buffer (swapped with `pending_retry`).
    retry_buf: Vec<(usize, QueueId)>,
    sched_pending: bool,
    last_squad_launch: SimTime,
    /// Total squads launched.
    pub squads_launched: usize,
    /// Squads that ran with spatial partitioning.
    pub sp_squads: usize,
    /// Memoized determiner results for recurring squad signatures.
    memo: ConfigMemo,

    /// Recoverable anomalies observed while scheduling (capped at
    /// `MAX_RECORDED_ERRORS`; the count keeps running in
    /// `robustness.sched_errors`).
    pub errors: Vec<SchedError>,
    /// Fault/recovery accounting for the robustness report.
    pub robustness: RobustnessReport,
    /// Crashed kernels awaiting re-submission, per app: `(kernel, queue)`.
    pending_retry: Vec<Vec<(usize, QueueId)>>,
    /// Re-submitted kernels that have not completed yet, per app.
    outstanding_retried: Vec<Vec<usize>>,
    /// Consecutive crash/retry rounds per app (drives the backoff).
    retry_streak: Vec<u32>,
    /// Current sharing mode per app on the degradation ladder.
    degrade: Vec<ShareMode>,
    /// Consecutive clean squads per app (drives re-promotion).
    clean_squads: Vec<u32>,
    /// Consecutive watchdog rounds each app has spent pinned at the
    /// bottom of the ladder (`Temporal`); resets the moment the app sits
    /// on any other rung. Read by the fleet layer to trigger
    /// watchdog-driven evacuation (DESIGN.md §5i follow-on).
    temporal_rounds: Vec<u32>,
}

struct SquadState {
    per_app: Vec<Option<EntryRun>>,
    /// Launched-but-unfinished kernels across entries.
    inflight_total: usize,
    /// Selected-but-unlaunched kernels across entries.
    pending_total: usize,
    /// When set, no further kernels are fed; the squad ends as soon as the
    /// in-flight ones finish (a new tenant's request arrived).
    draining: bool,
    launched_at: SimTime,
    spatial: bool,
    sm_caps: Vec<(usize, u32)>,
}

use gpu_sim::{decode_tag as untag, encode_tag as tag_of};
use workloads::encode_notice as workload_notice;

impl BlessDriver {
    /// Creates a BLESS driver for the given deployment.
    pub fn new(apps: Vec<DeployedApp>, params: BlessParams) -> Self {
        params.validate();
        let n = apps.len();
        BlessDriver {
            log: RequestLog::new(n),
            squad_log: Vec::new(),
            record_squads: false,
            queue_free: Vec::new(),
            queue_restricted: Vec::new(),
            ctx_restricted: Vec::new(),
            tables: Vec::new(),
            task_queues: vec![VecDeque::new(); n],
            active: vec![None; n],
            squad: None,
            squad_pool: None,
            actives_buf: Vec::new(),
            squad_scratch: SquadScratch::default(),
            squad_buf: Squad::default(),
            totals_buf: Vec::new(),
            retry_buf: Vec::new(),
            sched_pending: false,
            last_squad_launch: SimTime::ZERO,
            squads_launched: 0,
            sp_squads: 0,
            memo: ConfigMemo::new(),
            errors: Vec::new(),
            robustness: RobustnessReport::new(),
            pending_retry: vec![Vec::new(); n],
            outstanding_retried: vec![Vec::new(); n],
            retry_streak: vec![0; n],
            degrade: vec![ShareMode::SemiSpatial; n],
            clean_squads: vec![0; n],
            temporal_rounds: vec![0; n],
            apps,
            params,
        }
    }

    /// Current sharing mode of `app` on the degradation ladder.
    pub fn share_mode(&self, app: usize) -> ShareMode {
        self.degrade[app]
    }

    /// Consecutive watchdog rounds `app` has spent pinned at
    /// [`ShareMode::Temporal`] (0 whenever the app sits higher on the
    /// ladder, or when the watchdog is disabled). The fleet layer treats a
    /// tenant pinned for many rounds as a migration signal: the ladder has
    /// given up on sharing, so moving the tenant to a different device is
    /// the only remaining lever.
    pub fn temporal_pinned_rounds(&self, app: usize) -> u32 {
        self.temporal_rounds[app]
    }

    /// Lane hints for the current degradation state: which tenants could
    /// advance on independent engine lanes (`gpu_sim::lanes`) given their
    /// present share modes and quotas, on a device with `num_sms` SMs.
    ///
    /// The grouping is structural (SM-allocator reachability); see
    /// [`crate::lanes`] for when a hint may be promoted to an actual lane
    /// split. Recompute after degradation transitions — mode shifts move
    /// tenants between the shared-pool lane and partition lanes.
    pub fn lane_hints(&self, num_sms: u32) -> crate::lanes::LaneHints {
        let quotas: Vec<f64> = self.apps.iter().map(|a| a.quota).collect();
        crate::lanes::LaneHints::from_share_modes(&self.degrade, &quotas, num_sms)
    }

    /// Exports the driver's pending request work as a portable per-tenant
    /// checkpoint: the in-flight request (whose device squads the caller
    /// abandons via [`Gpu::drain_snapshot`]) plus the task queue in FIFO
    /// order, with the degradation-ladder position carried along.
    ///
    /// Pure read: the driver is left untouched, so the caller decides
    /// whether the source keeps running (planned migration) or is retired
    /// (device failure). Undelivered future arrivals live in the
    /// simulation loop, not the driver — collect them separately with
    /// `Simulation::take_pending_arrivals`.
    pub fn export_checkpoint(&self) -> Vec<TenantCheckpoint> {
        (0..self.apps.len())
            .map(|app| TenantCheckpoint {
                app,
                in_flight: self.active[app].map(|a| CheckpointReq {
                    req: a.req,
                    arrival: a.arrival,
                }),
                queued: self.task_queues[app]
                    .iter()
                    .map(|p| CheckpointReq {
                        req: p.req,
                        arrival: p.arrival,
                    })
                    .collect(),
                mode: self.degrade[app],
                clean_squads: self.clean_squads[app],
            })
            .collect()
    }

    /// Restores a migrated tenant's degradation-ladder position from its
    /// checkpoint: the tenant keeps its rung and its re-promotion progress,
    /// so a migration landing mid-ladder re-promotes through the same
    /// remaining rungs as an uninterrupted run.
    ///
    /// Call before the first arrival is delivered (fresh drivers start
    /// every tenant at semi-spatial with zero clean squads).
    pub fn restore_share_mode(&mut self, app: usize, mode: ShareMode, clean_squads: u32) {
        self.degrade[app] = mode;
        self.clean_squads[app] = clean_squads;
    }

    /// Records a recoverable anomaly without letting the error log grow
    /// unboundedly under a pathological fault storm.
    fn record_error(&mut self, e: SchedError) {
        self.robustness.sched_errors += 1;
        if self.errors.len() < MAX_RECORDED_ERRORS {
            self.errors.push(e);
        }
    }

    /// Moves `app` one step down (demote) or up (promote) the degradation
    /// ladder and records the transition.
    fn shift_mode(&mut self, gpu: &mut Gpu, app: usize, at: SimTime, demote: bool) {
        let from = self.degrade[app];
        let to = match (from, demote) {
            (ShareMode::SemiSpatial, true) => ShareMode::StrictSpatial,
            (ShareMode::StrictSpatial, true) => ShareMode::Temporal,
            (ShareMode::Temporal, false) => ShareMode::StrictSpatial,
            (ShareMode::StrictSpatial, false) => ShareMode::SemiSpatial,
            _ => return,
        };
        self.degrade[app] = to;
        if gpu.tracing_enabled() {
            gpu.trace_emit(TraceEvent::ModeShift {
                at,
                app: app as u32,
                from: mode_code(from),
                to: mode_code(to),
            });
        }
        self.robustness
            .degradations
            .push(DegradeTransition { at, app, from, to });
    }

    /// Fills `out` (cleared first) with a snapshot of the active requests.
    fn fill_active_requests(&self, out: &mut Vec<ActiveRequest>) {
        out.clear();
        out.extend(self.active.iter().enumerate().filter_map(|(app, a)| {
            a.map(|a| ActiveRequest {
                app,
                arrival: a.arrival,
                next_kernel: a.next_kernel,
            })
        }));
    }

    /// Requests squad scheduling at the current instant, deferred through
    /// a host wakeup so that all same-timestamp request arrivals are seen
    /// before the squad is generated.
    fn request_schedule(&mut self, gpu: &mut Gpu) {
        if self.sched_pending || self.squad.is_some() {
            return;
        }
        self.sched_pending = true;
        gpu.wake_at(gpu.now(), SCHED_WAKE_TOKEN);
    }

    /// Fills `out` with the active requests the next squad may draw from,
    /// honouring the degradation ladder: an app demoted to pure temporal
    /// sharing only runs solo, and only when it holds the earliest
    /// deadline (arrival + SLO-or-ISO target) among all active requests.
    fn fill_schedulable_actives(&self, out: &mut Vec<ActiveRequest>) {
        self.fill_active_requests(out);
        if out.is_empty() || !self.degrade.contains(&ShareMode::Temporal) {
            return;
        }
        let urgent = out
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.arrival + self.apps[r.app].target_latency())
            .map(|(i, _)| i);
        let Some(urgent) = urgent else { return };
        let urgent = out[urgent].clone();
        if self.degrade[urgent.app] == ShareMode::Temporal {
            out.clear();
            out.push(urgent);
            return;
        }
        out.retain(|r| self.degrade[r.app] != ShareMode::Temporal);
        if out.is_empty() {
            // Everyone is temporal-degraded: still serve the most urgent.
            out.push(urgent);
        }
    }

    fn schedule_squad(&mut self, gpu: &mut Gpu) {
        debug_assert!(self.squad.is_none());
        // Scratch buffers are moved out for the duration of the round
        // (`Vec::new`/`Default` placeholders allocate nothing) so `self`
        // stays borrowable, and restored — with their capacity — at the
        // end, making the whole round allocation-free in steady state.
        let mut active = std::mem::take(&mut self.actives_buf);
        self.fill_schedulable_actives(&mut active);
        if active.is_empty() {
            self.actives_buf = active;
            return;
        }
        let mut squad = std::mem::take(&mut self.squad_buf);
        let mut scratch = std::mem::take(&mut self.squad_scratch);
        generate_squad_into(
            gpu.now(),
            &active,
            &self.apps,
            &self.params,
            &mut scratch,
            &mut squad,
        );
        self.squad_scratch = scratch;
        self.actives_buf = active;
        if squad.is_empty() {
            self.squad_buf = squad;
            return;
        }

        let choice = if self.params.disable_determiner || squad.entries.len() < 2 {
            crate::predict::ConfigChoice {
                config: ExecConfig::Nsp,
                predicted: SimDuration::ZERO,
                evaluated: 0,
                pruned: 0,
            }
        } else {
            determine_config_memo_model(
                &mut self.memo,
                &squad,
                &self.apps,
                gpu.spec().num_sms,
                &gpu.spec().channel_model,
            )
        };

        // Balance the squad: trim trailing kernels from entries whose
        // predicted duration under the chosen configuration overshoots the
        // shortest entry — they would only straggle past the squad barrier
        // and are re-selected next squad. (The multi-task scheduler
        // compensates at fine granularity, §4.3.2; ending squads balanced
        // is what keeps the 20 µs squad switch the only boundary cost.)
        self.trim_squad(&mut squad, &choice.config, gpu.spec().num_sms);

        // Pipeline the scheduling cost with the previous squad: the squad
        // may not launch before the background scheduler has spent its
        // per-kernel time since the previous launch.
        let cost = scheduling_cost(squad.len(), self.params.graph_granularity, gpu.costs());
        let sched_ready = self.last_squad_launch + cost;
        let host_free = gpu.host_free_at();
        if sched_ready > host_free {
            gpu.charge_host(sched_ready.duration_since(host_free));
        }

        self.launch_squad(gpu, &squad, &choice);
        self.squad_buf = squad;
    }

    /// Trims each entry to roughly the predicted duration of the squad's
    /// shortest entry (+[`TRIM_TOLERANCE`]), so all entries finish
    /// near-simultaneously.
    fn trim_squad(&mut self, squad: &mut Squad, config: &ExecConfig, num_sms: u32) {
        if squad.entries.len() < 2 {
            return;
        }
        // Predicted per-kernel durations at the chosen configuration.
        let kernel_dur = |apps: &[DeployedApp], entry_idx: usize, app: usize, k: usize| -> f64 {
            apps[app]
                .predicted_kernel_duration(k, config.sm_cap(entry_idx, num_sms))
                .as_nanos() as f64
        };
        let mut totals = std::mem::take(&mut self.totals_buf);
        totals.clear();
        totals.extend(squad.entries.iter().enumerate().map(|(i, e)| {
            e.kernels
                .iter()
                .map(|&k| kernel_dur(&self.apps, i, e.app, k))
                .sum::<f64>()
        }));
        let target = totals.iter().cloned().fold(f64::MAX, f64::min) * TRIM_TOLERANCE;
        for (i, e) in squad.entries.iter_mut().enumerate() {
            if totals[i] <= target {
                continue;
            }
            let mut cum = 0.0;
            let mut keep = 0;
            for &k in &e.kernels {
                cum += kernel_dur(&self.apps, i, e.app, k);
                keep += 1;
                if cum > target {
                    break;
                }
            }
            e.kernels.truncate(keep.max(1));
        }
        totals.clear();
        self.totals_buf = totals;
    }

    fn launch_squad(&mut self, gpu: &mut Gpu, squad: &Squad, choice: &ConfigChoice) {
        let config = &choice.config;
        let num_sms = gpu.spec().num_sms;
        // Recycle the retired squad's buffers instead of reallocating.
        let mut state = self.squad_pool.take().unwrap_or_else(|| SquadState {
            per_app: Vec::new(),
            inflight_total: 0,
            pending_total: 0,
            draining: false,
            launched_at: SimTime::ZERO,
            spatial: false,
            sm_caps: Vec::new(),
        });
        state.per_app.clear();
        state.per_app.resize(self.apps.len(), None);
        state.sm_caps.clear();
        let mut pending_total = 0usize;
        let spatial = matches!(config, ExecConfig::Sp { .. });
        let squad_id = self.squads_launched as u64;
        let mut trace_entries: Vec<TraceSquadEntry> = Vec::new();

        for (entry_idx, entry) in squad.entries.iter().enumerate() {
            let app = entry.app;
            // A strict-spatial app keeps the SM restriction for its whole
            // entry; in a shared NSP squad it is forced under a
            // quota-proportional cap it would otherwise not have.
            let strict = self.degrade[app] == ShareMode::StrictSpatial && squad.entries.len() >= 2;
            let mut cap = config.sm_cap(entry_idx, num_sms);
            if strict && cap.is_none() {
                let quota_sms = (self.apps[app].quota * num_sms as f64).round() as u32;
                cap = Some(quota_sms.clamp(1, num_sms));
            }
            let cap = cap.map(|c| c.max(1));
            let mut applied_cap = 0u32;
            let split_at = match cap {
                Some(cap_sms) => match gpu.set_mps_cap(self.ctx_restricted[app], cap_sms) {
                    Ok(()) => {
                        state.sm_caps.push((app, cap_sms));
                        applied_cap = cap_sms;
                        if strict {
                            entry.kernels.len()
                        } else {
                            let c = self.params.split_ratio;
                            ((entry.kernels.len() as f64 * c).ceil() as usize)
                                .min(entry.kernels.len())
                        }
                    }
                    Err(e) => {
                        // A dead/unresizable restricted context must not
                        // abort the squad: run this entry unrestricted.
                        self.record_error(e.into());
                        0
                    }
                },
                None => 0,
            };
            if gpu.tracing_enabled() {
                trace_entries.push(TraceSquadEntry {
                    app: app as u32,
                    first_kernel: entry.kernels.first().copied().unwrap_or(0) as u32,
                    count: entry.kernels.len() as u32,
                    split_at: split_at as u32,
                    sm_cap: applied_cap,
                    mode: if applied_cap == 0 {
                        2
                    } else if strict {
                        1
                    } else {
                        0
                    },
                });
            }
            let predicted = if self.params.watchdog.is_some() {
                let ns: f64 = entry
                    .kernels
                    .iter()
                    .map(|&k| self.apps[app].predicted_kernel_duration(k, cap).as_nanos() as f64)
                    .sum();
                SimDuration::from_nanos(ns as u64)
            } else {
                SimDuration::ZERO
            };
            pending_total += entry.kernels.len();
            // Squad selections are a consecutive run of the app's trace
            // (the generator advances `next` one at a time), so a
            // `(first, count)` range captures them without cloning.
            let first = entry.kernels.first().copied().unwrap_or(0);
            debug_assert!(
                entry
                    .kernels
                    .iter()
                    .enumerate()
                    .all(|(i, &k)| k == first + i),
                "squad entry kernels must be consecutive"
            );
            state.per_app[app] = Some(EntryRun {
                head_remaining: split_at,
                next_to_launch: 0,
                inflight: 0,
                tail_started: split_at == 0,
                first,
                count: entry.kernels.len(),
                split_at,
                predicted,
                finished_at: None,
            });
        }

        self.squads_launched += 1;
        if spatial {
            self.sp_squads += 1;
        }
        self.last_squad_launch = gpu.now();
        state.inflight_total = 0;
        state.pending_total = pending_total;
        state.draining = false;
        state.launched_at = gpu.now();
        state.spatial = spatial;
        self.squad = Some(state);

        if gpu.tracing_enabled() {
            gpu.trace_emit(TraceEvent::ConfigChosen {
                at: gpu.now(),
                squad: squad_id,
                spatial,
                predicted_ns: choice.predicted.as_nanos(),
                evaluated: choice.evaluated as u32,
            });
            gpu.trace_emit(TraceEvent::SquadFormed {
                at: gpu.now(),
                id: squad_id,
                spatial,
                split_ratio: self.params.split_ratio,
                entries: trace_entries,
            });
        }

        // Prime the launch windows. (`squad` is the caller's buffer, not a
        // borrow of `self`, so no app list needs collecting.)
        for entry in &squad.entries {
            self.feed_entry(gpu, entry.app);
        }
    }

    /// Feeds the device with this entry's next kernels, up to the launch
    /// window, respecting the semi-SP barrier (tail kernels only launch
    /// once the restricted head finished, after the context-switch
    /// vacuum).
    fn feed_entry(&mut self, gpu: &mut Gpu, app: usize) {
        let window = self.params.launch_window;
        // A launch failure is collected here and handled after the squad
        // borrow ends (`record_error` needs `&mut self`).
        let mut launch_failed: Option<SchedError> = None;
        let Some(squad) = &mut self.squad else { return };
        if squad.draining {
            return;
        }
        let Some(entry) = squad.per_app[app].as_mut() else {
            return;
        };
        let graph = self.params.graph_granularity.max(1);
        let table = self.tables[app];
        while entry.inflight < window && entry.next_to_launch < entry.count {
            let idx = entry.next_to_launch;
            let in_head = idx < entry.split_at;
            // Semi-SP barrier: hold tail kernels until the head drains.
            if !in_head && entry.split_at > 0 && entry.head_remaining > 0 {
                break;
            }
            let (queue, extra) = if in_head {
                (self.queue_restricted[app], SimDuration::ZERO)
            } else if entry.split_at > 0 && !entry.tail_started {
                entry.tail_started = true;
                (self.queue_free[app], gpu.costs().context_switch)
            } else {
                (self.queue_free[app], SimDuration::ZERO)
            };
            // One scheduling unit: a single kernel, or a CUDA graph of up
            // to `graph` consecutive kernels on the same queue side
            // (launched with one API call, §6.10). The unit is a range of
            // the app's registered kernel table — no descriptor list is
            // built or cloned.
            let phase_end = if in_head { entry.split_at } else { entry.count };
            let unit_end = (idx + graph).min(phase_end);
            let launched = unit_end - idx;
            let base = entry.first;
            // The unit launches atomically: the only failure mode here is
            // a dead queue/context, which fails every call on it alike.
            let result: Result<(), gpu_sim::GpuError> = if launched == 1 {
                let k = base + idx;
                gpu.launch_table_delayed(queue, table, k, tag_of(app, k), extra)
                    .map(|_| ())
            } else if extra.is_zero() {
                gpu.launch_table_graph(queue, table, base + idx..base + unit_end, |k| {
                    tag_of(app, k)
                })
            } else {
                // The context-switch vacuum stalls only this queue: apply
                // it to the unit's first kernel; the rest of the graph
                // follows in FIFO order behind it.
                let k = base + idx;
                gpu.launch_table_delayed(queue, table, k, tag_of(app, k), extra)
                    .map(|_| ())
                    .and_then(|()| {
                        gpu.launch_table_graph(queue, table, base + idx + 1..base + unit_end, |k| {
                            tag_of(app, k)
                        })
                    })
            };
            if let Err(e) = result {
                launch_failed = Some(e.into());
                break;
            }
            entry.next_to_launch += launched;
            entry.inflight += launched;
            squad.inflight_total += launched;
            squad.pending_total -= launched;
        }
        if let Some(e) = launch_failed {
            self.record_error(e);
            // Try feeding again after a short backoff instead of wedging
            // the squad.
            gpu.wake_at(
                gpu.now() + SimDuration::from_nanos(RETRY_BACKOFF_BASE_NS),
                RETRY_WAKE_BASE + app as u64,
            );
        }
    }

    /// Marks the active request of `app` complete and activates the next
    /// queued one, if any.
    fn complete_request(&mut self, gpu: &mut Gpu, app: usize, at: SimTime) {
        let Some(act) = self.active[app].take() else {
            let kernel = self.apps[app].profile.kernel_count();
            self.record_error(SchedError::OrphanCompletion { app, kernel });
            return;
        };
        self.log.completed(app, act.req, at);
        if gpu.tracing_enabled() {
            gpu.trace_emit(TraceEvent::RequestDone {
                at,
                app: app as u32,
                req: act.req as u64,
            });
        }
        gpu.post_notice(workload_notice(app, act.req));
        if let Some(next) = self.task_queues[app].pop_front() {
            self.active[app] = Some(ActiveReq {
                req: next.req,
                arrival: next.arrival,
                next_kernel: 0,
            });
        }
    }

    /// Re-submits `app`'s crashed kernels to their original queues (the
    /// per-queue FIFO order is what keeps completions in kernel order).
    /// Kernels that fail to launch stay pending and another backoff wake
    /// is armed.
    fn flush_retries(&mut self, gpu: &mut Gpu, app: usize) {
        // Drain into the reusable scratch buffer (both Vecs keep their
        // capacity) so retry rounds allocate nothing in steady state.
        let mut pending = std::mem::take(&mut self.retry_buf);
        pending.clear();
        pending.append(&mut self.pending_retry[app]);
        let table = self.tables[app];
        for &(kernel, queue) in &pending {
            match gpu.launch_table(queue, table, kernel, tag_of(app, kernel)) {
                Ok(_) => {
                    self.robustness.kernels_retried += 1;
                    self.outstanding_retried[app].push(kernel);
                    if gpu.tracing_enabled() {
                        gpu.trace_emit(TraceEvent::RetrySubmitted {
                            at: gpu.now(),
                            app: app as u32,
                            kernel: kernel as u32,
                        });
                    }
                }
                Err(e) => {
                    self.record_error(e.into());
                    self.pending_retry[app].push((kernel, queue));
                }
            }
        }
        pending.clear();
        self.retry_buf = pending;
        if !self.pending_retry[app].is_empty() {
            let exp = self.retry_streak[app].min(RETRY_BACKOFF_CAP);
            self.retry_streak[app] = self.retry_streak[app].saturating_add(1);
            gpu.wake_at(
                gpu.now() + SimDuration::from_nanos(RETRY_BACKOFF_BASE_NS << exp),
                RETRY_WAKE_BASE + app as u64,
            );
        }
        // Also unstick the feed path in case a transient launch failure
        // stalled it earlier.
        self.feed_entry(gpu, app);
    }

    /// Compares each fully-run entry's observed duration against the
    /// predictor's promise and walks apps along the degradation ladder.
    fn watchdog_eval(&mut self, gpu: &mut Gpu, finished: &SquadState, ended_at: SimTime) {
        let Some(wd) = self.params.watchdog else {
            return;
        };
        // Pinned-at-temporal accounting: one tick per watchdog round for
        // every app sitting at the ladder's bottom rung — participation in
        // the finished squad is irrelevant (temporal tenants are mostly
        // *excluded* from squads, which is exactly why being stuck there
        // is a migration signal).
        for app in 0..self.apps.len() {
            if self.degrade[app] == ShareMode::Temporal {
                self.temporal_rounds[app] = self.temporal_rounds[app].saturating_add(1);
            } else {
                self.temporal_rounds[app] = 0;
            }
        }
        for app in 0..self.apps.len() {
            let Some(e) = finished.per_app[app].as_ref() else {
                continue;
            };
            // Drained/partial entries and zero-prediction entries carry no
            // signal about profile drift.
            let fully_ran = e.inflight == 0 && e.next_to_launch == e.count;
            if !fully_ran || e.predicted.is_zero() {
                continue;
            }
            let observed = e
                .finished_at
                .unwrap_or(ended_at)
                .duration_since(finished.launched_at);
            let ratio = observed.as_nanos() as f64 / e.predicted.as_nanos() as f64;
            if ratio > wd.degrade_threshold {
                self.clean_squads[app] = 0;
                self.shift_mode(gpu, app, ended_at, true);
            } else {
                self.clean_squads[app] += 1;
                if self.clean_squads[app] >= wd.promote_after
                    && self.degrade[app] != ShareMode::SemiSpatial
                {
                    self.clean_squads[app] = 0;
                    self.shift_mode(gpu, app, ended_at, false);
                }
            }
        }
    }
}

/// Wake token used for deferred squad scheduling.
const SCHED_WAKE_TOKEN: u64 = u64::MAX;

/// Base of the per-app retry wake tokens: token = base + app. Tags encode
/// the app in 20 bits, so the range `[base, u64::MAX)` cannot collide with
/// [`SCHED_WAKE_TOKEN`] or be exhausted by valid app indices.
const RETRY_WAKE_BASE: u64 = u64::MAX - (1 << 20);

/// First retry backoff after a context crash (50 µs); doubles each
/// consecutive crash round up to `2^RETRY_BACKOFF_CAP` times this.
const RETRY_BACKOFF_BASE_NS: u64 = 50_000;

/// Cap on the backoff exponent (50 µs · 2⁶ = 3.2 ms).
const RETRY_BACKOFF_CAP: u32 = 6;

/// At most this many [`SchedError`] values are kept on the driver.
const MAX_RECORDED_ERRORS: usize = 1024;

/// Trace-stream encoding of the degradation ladder (see DESIGN.md §5e).
fn mode_code(m: ShareMode) -> u8 {
    match m {
        ShareMode::SemiSpatial => 0,
        ShareMode::StrictSpatial => 1,
        ShareMode::Temporal => 2,
    }
}

/// Entries predicted to overshoot the squad's shortest entry by more than
/// this factor are trimmed back (their tail kernels return to the pool).
const TRIM_TOLERANCE: f64 = 1.10;

impl HostDriver for BlessDriver {
    fn on_start(&mut self, gpu: &mut Gpu) {
        // Deployment setup failures are operator errors, not runtime
        // conditions: fail fast with a message instead of degrading.
        fn must<T>(r: Result<T, gpu_sim::GpuError>, what: &str) -> T {
            match r {
                Ok(v) => v,
                Err(e) => panic!("BLESS deployment setup failed ({what}): {e}"),
            }
        }
        for app in &self.apps {
            must(
                gpu.alloc_memory(app.profile.memory_mib),
                "deployment must fit in device memory",
            );
            let free_ctx = must(gpu.create_context(CtxKind::Default), "default context");
            let res_ctx = must(
                gpu.create_context(CtxKind::MpsAffinity {
                    sm_cap: gpu.spec().num_sms,
                }),
                "MPS context",
            );
            self.queue_free
                .push(must(gpu.create_queue(free_ctx), "queue"));
            self.queue_restricted
                .push(must(gpu.create_queue(res_ctx), "queue"));
            self.ctx_restricted.push(res_ctx);
            // Register the app's profiled kernel trace as an engine table:
            // steady-state launches go by (table, index), never cloning
            // descriptors driver-side.
            self.tables
                .push(gpu.register_kernel_table(app.profile.kernels.clone()));
        }
    }

    fn on_request(&mut self, gpu: &mut Gpu, req: RequestArrival) {
        self.log.arrived(req.app, req.req, req.at);
        let newly_schedulable = self.active[req.app].is_none();
        if newly_schedulable {
            self.active[req.app] = Some(ActiveReq {
                req: req.req,
                arrival: req.at,
                next_kernel: 0,
            });
        } else {
            // The tenant already has an active request; this one queues
            // behind it (one request at a time per application, §4.3).
            self.task_queues[req.app].push_back(PendingReq {
                req: req.req,
                arrival: req.at,
            });
        }
        // Shrink instantly (§3.3): only a *newly schedulable* tenant
        // changes the next squad's planning input, so only then is
        // draining the in-flight squad worth its cost. A queued follow-up
        // request for an already-active tenant cannot join the next squad
        // anyway.
        if self.params.drain_on_arrival && newly_schedulable {
            if let Some(squad) = &mut self.squad {
                if squad.per_app[req.app].is_none() {
                    squad.draining = true;
                }
            }
        }
        self.request_schedule(gpu);
    }

    fn on_wake(&mut self, gpu: &mut Gpu, token: u64) {
        if token == SCHED_WAKE_TOKEN {
            self.sched_pending = false;
            if self.squad.is_none() {
                self.schedule_squad(gpu);
            }
            return;
        }
        if token >= RETRY_WAKE_BASE {
            let app = (token - RETRY_WAKE_BASE) as usize;
            if app < self.apps.len() {
                self.flush_retries(gpu, app);
            }
        }
    }

    fn on_kernel_done(&mut self, gpu: &mut Gpu, done: KernelDone) {
        let (app, kernel) = untag(done.tag);
        if app >= self.apps.len() {
            self.record_error(SchedError::OrphanCompletion { app, kernel });
            return;
        }

        // Retry accounting: a completed re-submission of a crashed kernel.
        if let Some(pos) = self.outstanding_retried[app]
            .iter()
            .position(|&k| k == kernel)
        {
            self.outstanding_retried[app].swap_remove(pos);
            self.robustness.retries_completed += 1;
        }

        // Advance the request pointer; complete the request on its last
        // kernel.
        let total = self.apps[app].profile.kernel_count();
        if let Some(act) = &mut self.active[app] {
            debug_assert_eq!(act.next_kernel, kernel, "kernels complete in order");
            act.next_kernel = kernel + 1;
            if act.next_kernel == total {
                self.complete_request(gpu, app, done.at);
            }
        } else {
            self.record_error(SchedError::OrphanCompletion { app, kernel });
        }

        // Squad bookkeeping.
        let Some(squad) = &mut self.squad else { return };
        let Some(entry) = squad.per_app[app].as_mut() else {
            self.record_error(SchedError::StaleSquadEntry { app });
            return;
        };
        entry.inflight = entry.inflight.saturating_sub(1);
        if entry.head_remaining > 0 {
            entry.head_remaining -= 1;
        }
        if entry.inflight == 0 && entry.next_to_launch == entry.count && entry.finished_at.is_none()
        {
            entry.finished_at = Some(done.at);
        }
        squad.inflight_total = squad.inflight_total.saturating_sub(1);
        let squad_done = squad.inflight_total == 0 && (squad.draining || squad.pending_total == 0);
        if !squad_done {
            self.feed_entry(gpu, app);
            return;
        }
        {
            let Some(finished) = self.squad.take() else {
                self.record_error(SchedError::MissingSquad);
                return;
            };
            if self.record_squads {
                self.squad_log.push(SquadRecord {
                    launched_at: finished.launched_at,
                    finished_at: done.at,
                    per_app_kernels: finished
                        .per_app
                        .iter()
                        .enumerate()
                        .filter_map(|(a, e)| e.as_ref().map(|e| (a, e.count)))
                        .collect(),
                    spatial: finished.spatial,
                    sm_caps: finished.sm_caps.clone(),
                });
            }
            if gpu.tracing_enabled() {
                let id = (self.squads_launched as u64).saturating_sub(1);
                gpu.trace_emit(TraceEvent::SquadRetired { at: done.at, id });
                for &(app, _) in &finished.sm_caps {
                    gpu.trace_emit(TraceEvent::PartitionReleased {
                        at: done.at,
                        ctx: self.ctx_restricted[app].0,
                    });
                }
            }
            self.watchdog_eval(gpu, &finished, done.at);
            // Recycle the retired squad's buffers into the next launch.
            self.squad_pool = Some(finished);
            // A crash-free squad boundary resets the backoff streak of
            // apps with nothing left to retry.
            for a in 0..self.apps.len() {
                if self.outstanding_retried[a].is_empty() && self.pending_retry[a].is_empty() {
                    self.retry_streak[a] = 0;
                }
            }
            // Squad switch: synchronize (20 µs) and schedule the next one
            // (deferred so same-instant arrivals are observed first).
            gpu.charge_host(gpu.costs().squad_sync);
            self.request_schedule(gpu);
        }
    }

    fn on_crash(&mut self, gpu: &mut Gpu, app: u32, failed: &[FailedKernel]) {
        let app = app as usize;
        self.robustness.crashes += 1;
        if app >= self.apps.len() {
            return;
        }
        // Queue every casualty for re-submission. A kernel we had already
        // re-submitted may be among them (crashed again): it moves from
        // outstanding back to pending.
        for f in failed {
            let (fapp, kernel) = untag(f.tag);
            if fapp != app {
                self.record_error(SchedError::StaleSquadEntry { app: fapp });
                continue;
            }
            if let Some(pos) = self.outstanding_retried[app]
                .iter()
                .position(|&k| k == kernel)
            {
                // A retry that crashed again: void its launch so the
                // failed/retried/completed counts stay in terms of unique
                // kernels (the engine's `FaultCounters` count raw
                // casualties instead).
                self.outstanding_retried[app].swap_remove(pos);
                self.robustness.kernels_retried = self.robustness.kernels_retried.saturating_sub(1);
            } else {
                self.robustness.kernels_failed += 1;
            }
            self.pending_retry[app].push((kernel, f.queue));
        }
        if self.pending_retry[app].is_empty() {
            return;
        }
        // Re-submit in kernel order so per-queue FIFO completion order is
        // preserved for the request pointer.
        self.pending_retry[app].sort_by_key(|&(k, _)| k);
        // Capped exponential backoff: crash storms must not busy-loop the
        // host with relaunches.
        let exp = self.retry_streak[app].min(RETRY_BACKOFF_CAP);
        self.retry_streak[app] = self.retry_streak[app].saturating_add(1);
        gpu.wake_at(
            gpu.now() + SimDuration::from_nanos(RETRY_BACKOFF_BASE_NS << exp),
            RETRY_WAKE_BASE + app as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{GpuSpec, HostCosts, RunOutcome, Simulation};
    use profiler::ProfiledApp;

    fn deploy(kind: ModelKind, quota: f64) -> DeployedApp {
        let profile =
            ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100());
        DeployedApp::new(profile, quota, None)
    }

    fn run_pair(
        a: ModelKind,
        b: ModelKind,
        quotas: (f64, f64),
        arrivals: Vec<RequestArrival>,
    ) -> BlessDriver {
        let apps = vec![deploy(a, quotas.0), deploy(b, quotas.1)];
        let driver = BlessDriver::new(apps, BlessParams::default());
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        let outcome = sim.run(SimTime::from_secs(10));
        assert_eq!(outcome, RunOutcome::Completed);
        assert!(sim.gpu.is_device_idle());
        sim.driver
    }

    #[test]
    fn lane_hints_track_the_degradation_ladder() {
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let mut driver = run_pair(
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            (0.25, 0.75),
            arrivals,
        );

        // Default ladder state is semi-spatial: both apps can reach the
        // shared pool, so they must share one lane.
        let hints = driver.lane_hints(108);
        assert_eq!(hints.num_lanes(), 1);
        assert_eq!(hints.groups[0].kind, crate::lanes::LaneKind::SharedPool);
        assert_eq!(hints.lane_of(0), hints.lane_of(1));

        // Degrade app 0 to strict spatial: it becomes shardable onto its
        // own quota-capped lane while app 1 keeps the pool lane.
        driver.degrade[0] = metrics::ShareMode::StrictSpatial;
        let hints = driver.lane_hints(108);
        assert_eq!(hints.num_lanes(), 2);
        assert_eq!(
            hints.groups[1].kind,
            crate::lanes::LaneKind::Partition { sm_cap: 27 }
        );
        assert_ne!(hints.lane_of(0), hints.lane_of(1));
    }

    #[test]
    fn tag_round_trips() {
        for (app, k) in [(0, 0), (7, 5034), (3, 12)] {
            assert_eq!(untag(tag_of(app, k)), (app, k));
        }
    }

    #[test]
    fn solo_request_completes_near_solo_latency() {
        let apps = vec![deploy(ModelKind::Vgg11, 0.5)];
        let driver = BlessDriver::new(apps, BlessParams::default());
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let arrivals = vec![RequestArrival {
            app: 0,
            req: 0,
            at: SimTime::ZERO,
        }];
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(1)), RunOutcome::Completed);
        let lat = sim.driver.log.stats(0).mean.unwrap();
        // BLESS lets a solo request use the whole GPU (bubble usage), so
        // its latency must be near the 10.2 ms full-GPU solo latency even
        // though the quota is only 50%, and far below the 50%-ISO latency.
        let iso50 = sim.driver.apps[0].iso_latency();
        assert!(lat.as_millis_f64() < 11.5, "latency {lat}");
        assert!(lat < iso50, "{lat} should beat the 50% ISO {iso50}");
    }

    #[test]
    fn overlapping_pair_stays_near_iso_targets() {
        // Two requests arriving at the same instant is the worst case:
        // there are no bubbles to squeeze, so the best any system can do
        // is the ISO partitioning plus unavoidable memory interference
        // (~7%, Fig. 9b) and squad overheads. Each app must stay within a
        // small envelope of its quota's isolated latency.
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let driver = run_pair(
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            (1.0 / 3.0, 2.0 / 3.0),
            arrivals,
        );
        for app in 0..2 {
            let lat = driver.log.stats(app).mean.unwrap();
            let iso = driver.apps[app].iso_latency();
            assert!(
                lat.as_nanos() as f64 <= iso.as_nanos() as f64 * 1.25,
                "app {app}: latency {lat} vs ISO {iso}"
            );
        }
        // And the average must beat the ISO average: the fast app reaps
        // the slack the slow app's quota leaves behind.
        let mean = driver.log.mean_of_app_means().unwrap();
        let iso_mean = (driver.apps[0].iso_latency() + driver.apps[1].iso_latency()) / 2;
        assert!(mean < iso_mean, "{mean} vs ISO mean {iso_mean}");
    }

    #[test]
    fn staggered_requests_both_benefit_from_bubbles() {
        // Requests that only partially overlap: both should beat ISO
        // clearly because each can use idle SMs of the other's quota.
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::from_millis(6),
            },
        ];
        let driver = run_pair(ModelKind::Vgg11, ModelKind::ResNet50, (0.5, 0.5), arrivals);
        for app in 0..2 {
            let lat = driver.log.stats(app).mean.unwrap();
            let iso = driver.apps[app].iso_latency();
            assert!(lat < iso, "app {app}: {lat} vs ISO {iso}");
        }
    }

    #[test]
    fn multiple_requests_per_app_run_fifo() {
        let arrivals = (0..3)
            .map(|i| RequestArrival {
                app: 0,
                req: i,
                at: SimTime::ZERO,
            })
            .collect();
        let apps = vec![deploy(ModelKind::ResNet50, 1.0)];
        let driver = BlessDriver::new(apps, BlessParams::default());
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(5)), RunOutcome::Completed);
        let recs = sim.driver.log.records(0);
        assert_eq!(recs.len(), 3);
        // FIFO: completions strictly ordered.
        for w in recs.windows(2) {
            assert!(w[0].completion.unwrap() <= w[1].completion.unwrap());
        }
    }

    #[test]
    fn squads_use_spatial_partitioning_when_beneficial() {
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let apps = vec![deploy(ModelKind::NasNet, 0.5), deploy(ModelKind::Bert, 0.5)];
        let mut driver = BlessDriver::new(apps, BlessParams::default());
        driver.record_squads = true;
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(5)), RunOutcome::Completed);
        assert!(sim.driver.squads_launched > 1);
        assert!(
            sim.driver.sp_squads > 0,
            "overlapped heavy squads should pick SP at least once"
        );
        // Squad records are consistent.
        for r in &sim.driver.squad_log {
            assert!(r.finished_at > r.launched_at);
            let total: usize = r.per_app_kernels.iter().map(|&(_, n)| n).sum();
            assert!(total <= BlessParams::default().max_kernels_per_squad);
        }
    }

    #[test]
    fn crashed_kernels_are_retried_and_no_request_is_lost() {
        use sim_core::{FaultPlan, FaultSpec};
        // Repeated context crashes mid-run: every casualty must be
        // re-submitted and every request must still complete.
        let arrivals: Vec<RequestArrival> = (0..4)
            .flat_map(|i| {
                (0..2).map(move |app| RequestArrival {
                    app,
                    req: i,
                    at: SimTime::from_millis(4 * i as u64),
                })
            })
            .collect();
        let apps = vec![
            deploy(ModelKind::NasNet, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let driver = BlessDriver::new(apps, BlessParams::default());
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let plan = FaultPlan::build(
            7,
            &FaultSpec {
                num_apps: 2,
                crash_count: 3,
                crash_window: (SimTime::from_millis(1), SimTime::from_millis(14)),
                ..FaultSpec::default()
            },
        );
        gpu.set_fault_plan(plan);
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(20)), RunOutcome::Completed);
        let counters = sim.gpu.fault_counters();
        assert_eq!(counters.crashes, 3);
        let rb = &sim.driver.robustness;
        assert_eq!(rb.crashes, 3);
        if counters.kernels_failed > 0 {
            assert!(rb.kernels_failed > 0, "driver saw the casualties");
            assert!(
                rb.all_retries_completed(),
                "failed {} retried {} completed {}",
                rb.kernels_failed,
                rb.kernels_retried,
                rb.retries_completed
            );
        }
        // No lost request: all eight completions are logged.
        for app in 0..2 {
            let recs = sim.driver.log.records(app);
            assert_eq!(recs.len(), 4);
            assert!(recs.iter().all(|r| r.completion.is_some()));
        }
    }

    #[test]
    fn watchdog_degrades_drifting_app_and_promotes_after_clean_squads() {
        use sim_core::{FaultPlan, FaultSpec};
        // App 1's profile drifts far beyond the watchdog threshold: the
        // watchdog must demote it at least one ladder step. The run must
        // still complete every request.
        let arrivals: Vec<RequestArrival> = (0..6)
            .flat_map(|i| {
                (0..2).map(move |app| RequestArrival {
                    app,
                    req: i,
                    at: SimTime::from_millis(5 * i as u64),
                })
            })
            .collect();
        let apps = vec![deploy(ModelKind::NasNet, 0.5), deploy(ModelKind::Bert, 0.5)];
        let params = BlessParams {
            watchdog: Some(crate::params::WatchdogParams {
                degrade_threshold: 1.4,
                promote_after: 3,
            }),
            ..BlessParams::default()
        };
        let driver = BlessDriver::new(apps, params);
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let plan = FaultPlan::build(
            11,
            &FaultSpec {
                num_apps: 2,
                drift_prob: 1.0,
                drift_range: (2.0, 2.5),
                ..FaultSpec::default()
            },
        );
        gpu.set_fault_plan(plan);
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(30)), RunOutcome::Completed);
        let rb = &sim.driver.robustness;
        assert!(
            rb.demotions() > 0,
            "2x drift on every kernel must trip the watchdog"
        );
        for app in 0..2 {
            assert_eq!(sim.driver.log.records(app).len(), 6);
        }
    }

    #[test]
    fn watchdog_stays_quiet_without_faults() {
        // With the watchdog armed but no faults injected, benign squads
        // must not trip it (threshold leaves headroom over model error).
        let arrivals = vec![
            RequestArrival {
                app: 0,
                req: 0,
                at: SimTime::ZERO,
            },
            RequestArrival {
                app: 1,
                req: 0,
                at: SimTime::ZERO,
            },
        ];
        let apps = vec![
            deploy(ModelKind::NasNet, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let params = BlessParams {
            watchdog: Some(crate::params::WatchdogParams::default()),
            ..BlessParams::default()
        };
        let driver = BlessDriver::new(apps, params);
        let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        assert_eq!(sim.run(SimTime::from_secs(10)), RunOutcome::Completed);
        assert_eq!(sim.driver.robustness.demotions(), 0);
        assert_eq!(sim.driver.robustness.sched_errors, 0);
        assert_eq!(sim.driver.share_mode(0), metrics::ShareMode::SemiSpatial);
    }

    #[test]
    fn ladder_round_trip_repromotes_through_the_same_rungs() {
        use metrics::ShareMode;
        // Walking an app all the way down the ladder and back up must
        // visit exactly the same rungs in reverse, with the saturating
        // steps (demote from temporal, promote from semi-spatial)
        // recording nothing.
        let walk = || {
            let params = BlessParams {
                watchdog: Some(crate::params::WatchdogParams::default()),
                ..BlessParams::default()
            };
            let mut driver = BlessDriver::new(vec![deploy(ModelKind::NasNet, 0.5)], params);
            let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
            for i in 0..3u64 {
                driver.shift_mode(&mut gpu, 0, SimTime::from_millis(i), true);
            }
            assert_eq!(driver.share_mode(0), ShareMode::Temporal);
            for i in 3..6u64 {
                driver.shift_mode(&mut gpu, 0, SimTime::from_millis(i), false);
            }
            assert_eq!(driver.share_mode(0), ShareMode::SemiSpatial);
            driver
                .robustness
                .degradations
                .iter()
                .map(|t| (t.app, t.from, t.to))
                .collect::<Vec<_>>()
        };
        let rungs = walk();
        assert_eq!(
            rungs,
            vec![
                (0, ShareMode::SemiSpatial, ShareMode::StrictSpatial),
                (0, ShareMode::StrictSpatial, ShareMode::Temporal),
                (0, ShareMode::Temporal, ShareMode::StrictSpatial),
                (0, ShareMode::StrictSpatial, ShareMode::SemiSpatial),
            ]
        );
        // Same walk, same rungs — the ladder is a deterministic machine.
        assert_eq!(rungs, walk());
    }

    #[test]
    fn checkpoint_restore_lands_mid_ladder_and_repromotes_identically() {
        use metrics::ShareMode;
        // A migration exports (mode, clean_squads) and restores them on
        // the target driver. The restored tenant must sit on the same
        // rung with the same promotion credit, and from there walk the
        // exact rung sequence the donor walks.
        let params = BlessParams {
            watchdog: Some(crate::params::WatchdogParams {
                degrade_threshold: 1.4,
                promote_after: 3,
            }),
            ..BlessParams::default()
        };
        let mut donor = BlessDriver::new(vec![deploy(ModelKind::NasNet, 0.5)], params.clone());
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        donor.shift_mode(&mut gpu, 0, SimTime::from_millis(1), true);
        donor.shift_mode(&mut gpu, 0, SimTime::from_millis(2), true);
        donor.clean_squads[0] = 2; // promotion credit banked mid-ladder
        let ckpt = donor.export_checkpoint();
        assert_eq!(ckpt[0].mode, ShareMode::Temporal);
        assert_eq!(ckpt[0].clean_squads, 2);

        let mut restored = BlessDriver::new(vec![deploy(ModelKind::NasNet, 0.5)], params);
        restored.restore_share_mode(0, ckpt[0].mode, ckpt[0].clean_squads);
        assert_eq!(restored.share_mode(0), ShareMode::Temporal);
        assert_eq!(restored.clean_squads[0], 2);

        // Promote both in lockstep: every rung matches.
        let mut tgt_gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        for i in 3..6u64 {
            donor.shift_mode(&mut gpu, 0, SimTime::from_millis(i), false);
            restored.shift_mode(&mut tgt_gpu, 0, SimTime::from_millis(i), false);
            assert_eq!(donor.share_mode(0), restored.share_mode(0), "step {i}");
        }
        assert_eq!(restored.share_mode(0), ShareMode::SemiSpatial);
        let donor_up: Vec<_> = donor.robustness.degradations[2..]
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        let restored_up: Vec<_> = restored
            .robustness
            .degradations
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert_eq!(donor_up, restored_up);
    }

    #[test]
    fn watchdog_repromotes_a_migrated_tenant_through_the_full_ladder() {
        use metrics::ShareMode;
        use sim_core::{FaultPlan, FaultSpec};
        // End-to-end: severe drift walks the tenant down to temporal;
        // a checkpoint restore moves it to a healthy device mid-ladder,
        // where the watchdog itself must re-promote it rung by rung back
        // to semi-spatial — the same rungs, watchdog-driven this time.
        let params = BlessParams {
            watchdog: Some(crate::params::WatchdogParams {
                degrade_threshold: 1.4,
                promote_after: 2,
            }),
            ..BlessParams::default()
        };
        let arrivals = |n: usize| -> Vec<RequestArrival> {
            (0..n)
                .map(|i| RequestArrival {
                    app: 0,
                    req: i,
                    at: SimTime::from_millis(5 * i as u64),
                })
                .collect()
        };
        let driver = BlessDriver::new(vec![deploy(ModelKind::NasNet, 0.5)], params.clone());
        let mut gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        gpu.set_fault_plan(FaultPlan::build(
            11,
            &FaultSpec {
                num_apps: 1,
                drift_prob: 1.0,
                drift_range: (2.0, 2.5),
                ..FaultSpec::default()
            },
        ));
        let mut sick = Simulation::new(gpu, driver, arrivals(8));
        assert_eq!(sick.run(SimTime::from_secs(30)), RunOutcome::Completed);
        assert_eq!(
            sick.driver.share_mode(0),
            ShareMode::Temporal,
            "persistent 2x drift must walk the tenant to the bottom rung"
        );

        // "Migrate": restore the exported ladder state on a fresh driver
        // and a fault-free device, then serve more requests there.
        let ckpt = sick.driver.export_checkpoint();
        let mut target = BlessDriver::new(vec![deploy(ModelKind::NasNet, 0.5)], params);
        target.restore_share_mode(0, ckpt[0].mode, ckpt[0].clean_squads);
        let healthy = Gpu::new(GpuSpec::a100(), HostCosts::paper());
        let mut sim = Simulation::new(healthy, target, arrivals(8));
        assert_eq!(sim.run(SimTime::from_secs(30)), RunOutcome::Completed);

        assert_eq!(sim.driver.share_mode(0), ShareMode::SemiSpatial);
        let rungs: Vec<_> = sim
            .driver
            .robustness
            .degradations
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert_eq!(
            rungs,
            vec![
                (ShareMode::Temporal, ShareMode::StrictSpatial),
                (ShareMode::StrictSpatial, ShareMode::SemiSpatial),
            ],
            "recovery must climb the same rungs the degradation descended"
        );
    }

    #[test]
    fn ablations_hurt_latency() {
        let arrivals = || {
            vec![
                RequestArrival {
                    app: 0,
                    req: 0,
                    at: SimTime::ZERO,
                },
                RequestArrival {
                    app: 1,
                    req: 0,
                    at: SimTime::ZERO,
                },
                RequestArrival {
                    app: 0,
                    req: 1,
                    at: SimTime::from_millis(4),
                },
                RequestArrival {
                    app: 1,
                    req: 1,
                    at: SimTime::from_millis(7),
                },
            ]
        };
        let run = |params: BlessParams| {
            let apps = vec![
                deploy(ModelKind::ResNet50, 0.7),
                deploy(ModelKind::ResNet50, 0.3),
            ];
            let driver = BlessDriver::new(apps, params);
            let gpu = Gpu::new(GpuSpec::a100(), HostCosts::paper());
            let mut sim = Simulation::new(gpu, driver, arrivals());
            assert_eq!(sim.run(SimTime::from_secs(5)), RunOutcome::Completed);
            sim.driver.log.mean_of_app_means().unwrap()
        };
        let full = run(BlessParams::default());
        let no_det = run(BlessParams {
            disable_determiner: true,
            ..BlessParams::default()
        });
        // Disabling the configuration determiner cannot make things
        // faster on average (allowing a sliver of noise).
        assert!(
            no_det.as_nanos() as f64 >= full.as_nanos() as f64 * 0.98,
            "full {full}, no determiner {no_det}"
        );
    }
}
