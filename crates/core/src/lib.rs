#![warn(missing_docs)]

//! BLESS: bubbleless spatial-temporal GPU sharing (EuroSys '25).
//!
//! This crate is the paper's primary contribution: a host-side runtime
//! that lets multiple applications share a GPU with *quota guarantees*
//! while squeezing the idle "bubbles" that temporal and spatial sharing
//! leave behind.
//!
//! * [`squad`] — the multi-task scheduler (§4.3): progress-based kernel
//!   selection into *kernel squads*.
//! * [`predict`] — the execution configuration determiner (§4.4): the
//!   interference-free (Eq. 1) and workload-equivalence (Eq. 2) squad
//!   duration estimators and the configuration search.
//! * [`runtime`] — the concurrent kernel manager (§4.5): launching squads
//!   into per-tenant restricted/unrestricted MPS contexts with semi-SP
//!   context switching, squad synchronization, and SLO mode (§6.5).
//! * [`deploy`] / [`params`] — deployment bindings and the tunables of
//!   §6.7 (squad size 50, split ratio 50%) plus the §6.8 ablations.
//!
//! # Example
//!
//! ```
//! use bless::{BlessDriver, BlessParams, DeployedApp};
//! use dnn_models::{AppModel, ModelKind, Phase};
//! use gpu_sim::{Gpu, GpuSpec, HostCosts, RequestArrival, Simulation};
//! use profiler::ProfiledApp;
//! use sim_core::SimTime;
//!
//! // Profile two applications offline and deploy them with quotas.
//! let spec = GpuSpec::a100();
//! let vgg = ProfiledApp::profile(&AppModel::build(ModelKind::Vgg11, Phase::Inference), &spec);
//! let r50 = ProfiledApp::profile(&AppModel::build(ModelKind::ResNet50, Phase::Inference), &spec);
//! let apps = vec![
//!     DeployedApp::new(vgg, 1.0 / 3.0, None),
//!     DeployedApp::new(r50, 2.0 / 3.0, None),
//! ];
//!
//! // Run two overlapping requests under BLESS.
//! let driver = BlessDriver::new(apps, BlessParams::default());
//! let arrivals = vec![
//!     RequestArrival { app: 0, req: 0, at: SimTime::ZERO },
//!     RequestArrival { app: 1, req: 0, at: SimTime::ZERO },
//! ];
//! let mut sim = Simulation::new(Gpu::new(spec, HostCosts::paper()), driver, arrivals);
//! sim.run(SimTime::from_secs(1));
//! let mean = sim.driver.log.mean_of_app_means().unwrap();
//! assert!(mean.as_millis_f64() < 18.0);
//! ```

pub mod demand;
pub mod deploy;
pub mod error;
pub mod ingest;
pub mod lanes;
pub mod params;
pub mod predict;
pub mod runtime;
pub mod squad;

pub use demand::aggregate_demand;
pub use deploy::DeployedApp;
pub use error::SchedError;
pub use ingest::{
    IngestConfig, IngestSink, IngestStage, PumpProgress, RateLimit, ServeDaemon, TenantIngestStats,
    TenantStream,
};
pub use lanes::{LaneGroup, LaneHints, LaneKind};
pub use params::{BlessParams, WatchdogParams};
pub use predict::{
    determine_config, determine_config_exhaustive, determine_config_memo,
    determine_config_memo_model, determine_config_model, predict_interference_free,
    predict_interference_free_channels, predict_interference_free_model,
    predict_workload_equivalence, predict_workload_equivalence_channels,
    predict_workload_equivalence_model, ConfigChoice, ConfigMemo, ExecConfig,
};
pub use runtime::{BlessDriver, CheckpointReq, SquadRecord, TenantCheckpoint};
pub use squad::{
    generate_squad, generate_squad_into, ActiveRequest, Squad, SquadEntry, SquadScratch,
};
