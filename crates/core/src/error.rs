//! Typed scheduler errors.
//!
//! The scheduling hot paths ([`crate::runtime::BlessDriver`]) surface
//! anomalies as [`SchedError`] values recorded on the driver instead of
//! panicking: a production scheduler must outlive a mis-predicted profile
//! or a dead MPS context (see DESIGN.md "Fault model & graceful
//! degradation"). Startup/configuration mistakes (deployment does not fit
//! in memory, invalid parameters) still fail fast — they are operator
//! errors, not runtime conditions.

use gpu_sim::GpuError;

/// A recoverable scheduling anomaly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// A device operation failed mid-run (launch, cap resize, …).
    Gpu(GpuError),
    /// A kernel completion arrived for an application with no active
    /// request (e.g. the request was already retired).
    OrphanCompletion {
        /// Application the completion was tagged with.
        app: usize,
        /// Kernel index the completion was tagged with.
        kernel: usize,
    },
    /// A kernel completion arrived for an application with no entry in
    /// the in-flight squad.
    StaleSquadEntry {
        /// Application the completion was tagged with.
        app: usize,
    },
    /// Squad bookkeeping references a squad that no longer exists.
    MissingSquad,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Gpu(e) => write!(f, "device operation failed: {e}"),
            SchedError::OrphanCompletion { app, kernel } => {
                write!(f, "completion for inactive app {app} (kernel {kernel})")
            }
            SchedError::StaleSquadEntry { app } => {
                write!(f, "completion for app {app} absent from the squad")
            }
            SchedError::MissingSquad => write!(f, "squad state missing"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for SchedError {
    fn from(e: GpuError) -> Self {
        SchedError::Gpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: SchedError = GpuError::InvalidOperation("nope").into();
        assert!(format!("{e}").contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
        let e = SchedError::OrphanCompletion { app: 2, kernel: 7 };
        assert!(format!("{e}").contains("app 2"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
