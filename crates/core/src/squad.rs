//! Kernel squads and the multi-task scheduler's selection logic (§4.3).
//!
//! A *kernel squad* is a group of kernels drawn from the concurrently
//! active requests of different applications. In each generation step the
//! scheduler picks the next kernel of the request with the smallest
//! relative progress — the request that is furthest behind its
//! quota-proportional schedule — so that all co-located requests approach
//! (and beat) their isolated-latency targets together.
//!
//! ## Progress model
//!
//! The scheduler's objective (§4.3) is to *approach the isolated latency
//! target* of every request — the quota guarantee is the deadline
//! `D_j = arrival_j + target_j` (with `target_j = T[n%]`, or the QoS
//! target in SLO mode, §6.5) — and, subject to that, to reduce latency
//! unbiasedly. Each generation step therefore applies **laxity-guarded
//! earliest-deadline-first**:
//!
//! * For each active request, the *laxity* is the slack left if the rest
//!   of the request ran at its quota pace:
//!   `L_j = D_j − now − (τ[n][last] − τ[n][next]) · safety`.
//! * If any request's laxity is negative it is falling behind its quota
//!   schedule (the paper's `P̃ = P_r/P_e < 1`); among the lagging
//!   requests, the one with the **earliest deadline** is served first
//!   (the tightest guarantee wins — laxity magnitude only breaks exact
//!   ties). This is §4.3.2's fine-grained compensation with EDF inside
//!   the at-risk tier, which also drives SLO mode (§6.5).
//! * Otherwise everyone's guarantee is safe, and the request with the
//!   earliest deadline takes the kernels: leaders finish early at full
//!   speed, vacating the GPU (creating the very bubbles BLESS exploits)
//!   while later requests ride their quota schedule and still meet their
//!   targets.
//!
//! This reproduces the paper's Fig. 18(a) dynamics exactly: with 70%/30%
//! quotas the 70% request has the earlier deadline, receives more kernels
//! per squad, and completes first, while the 30% request is compensated
//! whenever its laxity dips.

use sim_core::{SimDuration, SimTime};

use crate::deploy::DeployedApp;
use crate::params::BlessParams;

/// One application's share of a kernel squad.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SquadEntry {
    /// Application index.
    pub app: usize,
    /// Kernel indices (into the app's kernel trace), in execution order.
    pub kernels: Vec<usize>,
}

/// A generated kernel squad.
#[derive(Clone, Debug, Default)]
pub struct Squad {
    /// Per-application kernel selections (apps with no kernels selected do
    /// not appear).
    pub entries: Vec<SquadEntry>,
}

impl Squad {
    /// Total number of kernels in the squad.
    pub fn len(&self) -> usize {
        self.entries.iter().map(|e| e.kernels.len()).sum()
    }

    /// True if no kernels were selected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The applications participating in this squad.
    pub fn apps(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.app).collect()
    }
}

/// The scheduler's view of one active request during squad generation.
#[derive(Clone, Debug)]
pub struct ActiveRequest {
    /// Application index.
    pub app: usize,
    /// Arrival time of the request.
    pub arrival: SimTime,
    /// Index of the next unscheduled kernel.
    pub next_kernel: usize,
}

/// The scheduler's working view of one candidate request during squad
/// generation. Selections are always consecutive (`start..next`), so the
/// candidate carries a range, not a kernel list.
struct Cand {
    app: usize,
    /// First kernel selected this round (the request's `next_kernel`).
    start: usize,
    next: usize,
    total: usize,
    /// Absolute quota deadline (arrival + target), ns.
    deadline_ns: f64,
    /// Remaining time at quota pace for the unscheduled suffix, ns
    /// (updated tentatively as kernels are selected).
    remaining_quota_ns: f64,
}

/// Reusable buffers for [`generate_squad_into`]: the candidate pool plus a
/// spare-list of kernel `Vec`s recycled from previously emitted squads, so
/// a driver that passes the same scratch every round generates squads with
/// zero steady-state heap allocation.
#[derive(Default)]
pub struct SquadScratch {
    cands: Vec<Cand>,
    spare: Vec<Vec<usize>>,
}

/// Generates a kernel squad from the active requests (§4.3.2).
///
/// `apps[i]` must hold the deployment data for application `i`. Generation
/// stops when the squad reaches `params.max_kernels_per_squad` kernels or
/// when the selected kernel is the last kernel of a request (the paper's
/// two termination conditions).
pub fn generate_squad(
    now: SimTime,
    active: &[ActiveRequest],
    apps: &[DeployedApp],
    params: &BlessParams,
) -> Squad {
    let mut scratch = SquadScratch::default();
    let mut out = Squad::default();
    generate_squad_into(now, active, apps, params, &mut scratch, &mut out);
    out
}

/// [`generate_squad`] writing into `out` and reusing `scratch`: `out`'s
/// previous entries are recycled through the scratch's spare list, so the
/// steady-state scheduling round allocates nothing. `active` must hold at
/// most one request per application (the driver's invariant; entries are
/// emitted in ascending application order either way).
pub fn generate_squad_into(
    now: SimTime,
    active: &[ActiveRequest],
    apps: &[DeployedApp],
    params: &BlessParams,
    scratch: &mut SquadScratch,
    out: &mut Squad,
) {
    for mut e in out.entries.drain(..) {
        e.kernels.clear();
        scratch.spare.push(e.kernels);
    }

    let now_ns = now.as_nanos() as f64;
    let cands = &mut scratch.cands;
    cands.clear();
    for r in active {
        let d = &apps[r.app];
        let total = d.profile.kernel_count();
        // Degenerate deployments (empty kernel trace) and requests past
        // their last kernel have nothing to schedule.
        if total == 0 || r.next_kernel >= total {
            continue;
        }
        let stretch = d.schedule_stretch();
        let tau_end = d.quota_tau(total - 1).as_nanos() as f64;
        let tau_done = if r.next_kernel == 0 {
            0.0
        } else {
            d.quota_tau(r.next_kernel - 1).as_nanos() as f64
        };
        cands.push(Cand {
            app: r.app,
            start: r.next_kernel,
            next: r.next_kernel,
            total,
            deadline_ns: r.arrival.as_nanos() as f64 + d.target_latency().as_nanos() as f64,
            remaining_quota_ns: (tau_end - tau_done) * stretch,
        });
    }

    // Safety factor on the quota-pace estimate: leaves headroom for
    // interference and squad-boundary granularity so that deprioritized
    // requests still land within their targets.
    const LAXITY_SAFETY: f64 = 1.10;

    let mut count = 0usize;
    let mut rr_cursor = 0usize; // Round-robin cursor for the ablation mode.
    while count < params.max_kernels_per_squad {
        // The live candidates are scanned in place, in candidate order —
        // the same order the former materialized `live` list had, and
        // `min_by` keeps the first minimum — so every pick below is
        // identical to the list-building implementation.
        let is_live = |c: &Cand| c.next < c.total;
        let live_count = cands.iter().filter(|c| is_live(c)).count();
        if live_count == 0 {
            break;
        }

        let pick = if params.disable_multitask {
            // Ablation: plain round-robin over live candidates.
            let j = rr_cursor % live_count;
            rr_cursor += 1;
            cands
                .iter()
                .enumerate()
                .filter(|(_, c)| is_live(c))
                .nth(j)
                .map(|(i, _)| i)
                .unwrap_or(0)
        } else {
            let laxity = |c: &Cand| c.deadline_ns - now_ns - c.remaining_quota_ns * LAXITY_SAFETY;
            // Tier 1: lagging requests (negative laxity) first, the one
            // with the earliest deadline leading — the tightest guarantee
            // wins when several are behind schedule.
            let at_risk = (0..cands.len())
                .filter(|&i| is_live(&cands[i]) && laxity(&cands[i]) < 0.0)
                .min_by(|&a, &b| {
                    cands[a]
                        .deadline_ns
                        .total_cmp(&cands[b].deadline_ns)
                        .then(laxity(&cands[a]).total_cmp(&laxity(&cands[b])))
                        .then(cands[a].app.cmp(&cands[b].app))
                });
            // Tier 2: everyone safe — earliest deadline finishes first.
            at_risk.unwrap_or_else(|| {
                (0..cands.len())
                    .filter(|&i| is_live(&cands[i]))
                    .min_by(|&a, &b| {
                        cands[a]
                            .deadline_ns
                            .total_cmp(&cands[b].deadline_ns)
                            .then(cands[a].app.cmp(&cands[b].app))
                    })
                    // Live candidates exist (checked above); the fallback
                    // only placates the no-panic lint.
                    .unwrap_or(0)
            })
        };

        // Select one scheduling unit: a single kernel, or a whole
        // CUDA-graph run of `graph_granularity` consecutive kernels
        // (§6.10 — graphs are atomic scheduling units).
        let c = &mut cands[pick];
        let unit = params.graph_granularity.max(1);
        let mut completed_request = false;
        for _ in 0..unit {
            if c.next >= c.total {
                break;
            }
            c.remaining_quota_ns -= apps[c.app].quota_kernel_duration(c.next).as_nanos() as f64
                * apps[c.app].schedule_stretch();
            c.next += 1;
            count += 1;
            if c.next >= c.total {
                completed_request = true;
            }
        }
        if completed_request {
            // Termination (2): the selected unit completed a request.
            break;
        }
    }

    // Emit non-empty selections in ascending app order (as the former
    // per-app selection table did), recycling spare kernel Vecs.
    for app in 0..apps.len() {
        for c in cands.iter().filter(|c| c.app == app && c.next > c.start) {
            let mut kernels = scratch.spare.pop().unwrap_or_default();
            kernels.clear();
            kernels.extend(c.start..c.next);
            out.entries.push(SquadEntry { app, kernels });
        }
    }
}

/// Host-side cost of generating and configuring a squad (§6.9: 3.7 µs
/// multi-task scheduling + 2 µs configuration search + 1 µs squad
/// generation, per scheduling unit). At graph granularity `G > 1` the
/// per-unit cost is paid once per graph instead of once per kernel
/// (§6.10).
pub fn scheduling_cost(
    squad_len: usize,
    graph_granularity: usize,
    costs: &gpu_sim::HostCosts,
) -> SimDuration {
    let units = squad_len.div_ceil(graph_granularity.max(1));
    (costs.sched_per_kernel + costs.config_search_per_kernel + costs.squad_gen_per_kernel)
        * units as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeployedApp;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::GpuSpec;
    use profiler::ProfiledApp;

    fn deploy(kind: ModelKind, quota: f64) -> DeployedApp {
        let profile =
            ProfiledApp::profile(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100());
        DeployedApp::new(profile, quota, None)
    }

    fn active(app: usize, next: usize) -> ActiveRequest {
        ActiveRequest {
            app,
            arrival: SimTime::ZERO,
            next_kernel: next,
        }
    }

    #[test]
    fn squad_respects_max_size() {
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let params = BlessParams {
            max_kernels_per_squad: 6,
            ..BlessParams::default()
        };
        let squad = generate_squad(SimTime::ZERO, &[active(0, 0), active(1, 0)], &apps, &params);
        assert_eq!(squad.len(), 6);
        assert_eq!(squad.apps().len(), 2);
    }

    #[test]
    fn higher_quota_app_gets_more_kernels_when_both_lag() {
        // Fig. 18: two R50s with 70%/30% quotas arriving simultaneously.
        // After some wall time has passed, the 70% app's schedule is
        // tighter, so it should receive more kernels per squad.
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.7),
            deploy(ModelKind::ResNet50, 0.3),
        ];
        let params = BlessParams {
            max_kernels_per_squad: 20,
            ..BlessParams::default()
        };
        // Both requests arrived 5 ms ago and have executed 10 kernels.
        let now = SimTime::from_millis(5);
        let squad = generate_squad(now, &[active(0, 10), active(1, 10)], &apps, &params);
        let count = |app: usize| {
            squad
                .entries
                .iter()
                .find(|e| e.app == app)
                .map_or(0, |e| e.kernels.len())
        };
        assert!(
            count(0) > count(1),
            "70% quota should get more kernels: {} vs {}",
            count(0),
            count(1)
        );
    }

    #[test]
    fn lagging_request_is_compensated() {
        // Same model, same quota, but app 1's request has been waiting far
        // longer relative to its progress -> it should dominate the squad.
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let params = BlessParams {
            max_kernels_per_squad: 20,
            ..BlessParams::default()
        };
        let reqs = [
            ActiveRequest {
                app: 0,
                arrival: SimTime::from_millis(99),
                next_kernel: 20,
            },
            ActiveRequest {
                app: 1,
                arrival: SimTime::ZERO, // waiting 100 ms, no progress
                next_kernel: 0,
            },
        ];
        let squad = generate_squad(SimTime::from_millis(100), &reqs, &apps, &params);
        let count = |app: usize| {
            squad
                .entries
                .iter()
                .find(|e| e.app == app)
                .map_or(0, |e| e.kernels.len())
        };
        assert!(count(1) > count(0), "{} vs {}", count(1), count(0));
    }

    #[test]
    fn squad_ends_at_request_completion() {
        let apps = vec![deploy(ModelKind::Vgg11, 1.0)];
        let total = apps[0].profile.kernel_count();
        let params = BlessParams {
            max_kernels_per_squad: 1000,
            ..BlessParams::default()
        };
        let squad = generate_squad(SimTime::ZERO, &[active(0, total - 3)], &apps, &params);
        // Only the last three kernels fit before termination condition (2).
        assert_eq!(squad.len(), 3);
        let ks = &squad.entries[0].kernels;
        assert_eq!(*ks.last().unwrap(), total - 1);
    }

    #[test]
    fn kernels_are_selected_in_order_per_app() {
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.5),
            deploy(ModelKind::Vgg11, 0.5),
        ];
        let squad = generate_squad(
            SimTime::from_millis(1),
            &[active(0, 5), active(1, 2)],
            &apps,
            &BlessParams::default(),
        );
        for e in &squad.entries {
            assert!(e.kernels.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn round_robin_ablation_splits_evenly() {
        let apps = vec![
            deploy(ModelKind::ResNet50, 0.7),
            deploy(ModelKind::ResNet50, 0.3),
        ];
        let params = BlessParams {
            max_kernels_per_squad: 20,
            disable_multitask: true,
            ..BlessParams::default()
        };
        let squad = generate_squad(
            SimTime::from_millis(5),
            &[active(0, 10), active(1, 10)],
            &apps,
            &params,
        );
        let count = |app: usize| {
            squad
                .entries
                .iter()
                .find(|e| e.app == app)
                .map_or(0, |e| e.kernels.len())
        };
        assert_eq!(count(0), count(1), "round-robin ignores quotas");
    }

    #[test]
    fn empty_active_set_gives_empty_squad() {
        let apps = vec![deploy(ModelKind::Vgg11, 1.0)];
        let squad = generate_squad(SimTime::ZERO, &[], &apps, &BlessParams::default());
        assert!(squad.is_empty());
        assert_eq!(squad.len(), 0);
    }

    #[test]
    fn exhausted_request_is_skipped_not_panicked() {
        // A request whose kernels are all scheduled (next == total) must
        // be filtered out, not underflow the quota-schedule lookup.
        let apps = vec![
            deploy(ModelKind::Vgg11, 0.5),
            deploy(ModelKind::ResNet50, 0.5),
        ];
        let total = apps[0].profile.kernel_count();
        let squad = generate_squad(
            SimTime::ZERO,
            &[active(0, total), active(1, 0)],
            &apps,
            &BlessParams::default(),
        );
        assert_eq!(squad.apps(), vec![1], "only the live request schedules");

        // All requests exhausted -> empty squad, no panic.
        let squad = generate_squad(
            SimTime::ZERO,
            &[active(0, total)],
            &apps,
            &BlessParams::default(),
        );
        assert!(squad.is_empty());
    }
}
