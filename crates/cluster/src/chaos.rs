//! Fleet-level fault tolerance: GPU failure injection, tenant live
//! migration, and the deterministic chaos runner.
//!
//! [`run_chaos`] serves a placed multi-GPU deployment exactly like
//! [`crate::run_cluster`], but under a [`FaultPlan`] that can kill
//! devices permanently ([`sim_core::GpuFailEvent`]) or hang them
//! transiently ([`sim_core::GpuHangEvent`]). When a device faults, its
//! runtime is quiesced at a barrier one nanosecond before the fault
//! instant, the in-flight squads are abandoned with typed errors on the
//! device ([`Gpu::drain_snapshot`]), and the pending per-tenant work is
//! exported as a portable checkpoint ([`BlessDriver::export_checkpoint`]
//! plus the undelivered arrival tail from
//! [`Simulation::take_pending_arrivals`]).
//!
//! * **Permanent failure** — every casualty with remaining work is handed
//!   to the [`MigrationPolicy`], which first-fits it onto a surviving
//!   device under the same quota-capacity and §4.2.2 admission rules the
//!   initial placement used. The checkpoint replays on the target after a
//!   modeled [`ChaosOptions::migration_cost`] (checkpoint transfer plus
//!   context re-provisioning, the cross-device analogue of the 50 µs MPS
//!   vacuum). Tenants no device can admit are *stranded*: reported with a
//!   typed [`PlacementError::NoCapacity`] instead of silently dropped.
//! * **Transient hang** — the device's work survives: the same
//!   drain-and-snapshot runs at onset, and the checkpoint replays on the
//!   *same* device once the hang clears, after a modeled
//!   [`ChaosOptions::restart_cost`].
//! * **Planned pinned evacuation** — with
//!   [`ChaosOptions::pinned_evacuation`] set, a periodic fleet-wide check
//!   reads each device's drift watchdog and relocates tenants that have
//!   sat at the bottom of the degradation ladder for too long onto a
//!   *different* surviving device, where they restart at the top of the
//!   ladder (see [`PinnedPolicy`]). This wires the single-GPU watchdog
//!   into fleet-level migration: the same quiesce/checkpoint/replay
//!   machinery a failure uses, but triggered by sustained interference
//!   rather than by a fault.
//!
//! Recovery time is first-class: every interruption produces a
//! [`MigrationRecord`] whose [`MigrationRecord::recovery`] is the gap
//! between fault onset and the instant the tenant's work resumes.
//!
//! # Determinism
//!
//! The fault schedule is a pure function of `(fault_seed, FaultSpec)`;
//! fault events are applied sequentially in time order, and only the
//! final drain of surviving devices runs on the worker pool — each
//! surviving runtime is self-contained by then, so the merged result is
//! byte-identical at any worker count. A [`FaultPlan::none`] chaos run
//! performs no quiesce, no rebuild, and no migration: each GPU executes
//! the identical event sequence as [`crate::run_cluster`].
//!
//! # Scope
//!
//! Only open-loop arrival patterns are supported (closed-loop client
//! state lives in a notice-handler closure that cannot be checkpointed),
//! and only the GPU-level fault classes of the spec are consumed here —
//! device-level faults (context crashes, DMA stalls, drift, stragglers)
//! compose through the single-GPU `run_custom_faulted` harness path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use bless::{BlessDriver, BlessParams, DeployedApp, TenantCheckpoint};
use gpu_sim::{Gpu, GpuSpec, HostCosts, RequestArrival, RunOutcome, Simulation};
use metrics::{RequestLog, ShareMode};
use profiler::{admit, AdmissionPolicy, ProfiledApp, SharedProfile};
use sim_core::trace::TraceEvent;
use sim_core::{FaultPlan, FaultSpec, SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

use crate::placement::{place, CapacityIndex, Placement, PlacementError, PlacementRequest};

/// The class of device fault that interrupted a tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanent device failure: the tenant moved to another GPU.
    Failure,
    /// Transient device hang: the tenant resumed on the same GPU.
    Hang,
    /// Planned evacuation: the drift watchdog reported the tenant pinned
    /// at the bottom of the degradation ladder, so the fleet relocated it
    /// (see [`PinnedPolicy`]).
    Pinned,
}

/// Same-instant fault ordering: failures quiesce first, then hangs, then
/// the planned pinned checks (which see the post-fault fleet).
fn fault_rank(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::Failure => 0,
        FaultKind::Hang => 1,
        FaultKind::Pinned => 2,
    }
}

/// Watchdog-driven planned evacuation (the fleet-level consequence of the
/// degradation ladder): a tenant the drift watchdog reports pinned at
/// [`ShareMode::Temporal`] for [`PinnedPolicy::after_rounds`] consecutive
/// rounds is moved to a *different* surviving device at the next periodic
/// fleet check — the ladder has given up on sharing there, so relocating
/// is the only remaining lever. Each tenant moves at most once per run; a
/// mover restarts at the top of the ladder on its new device, and a mover
/// no device can admit simply stays put (a planned evacuation never
/// strands work). Requires a watchdog-enabled [`BlessParams`] deployment:
/// [`BlessDriver::temporal_pinned_rounds`] never ticks otherwise.
#[derive(Clone, Copy, Debug)]
pub struct PinnedPolicy {
    /// Consecutive watchdog rounds at [`ShareMode::Temporal`] before a
    /// tenant becomes eligible for evacuation.
    pub after_rounds: u32,
    /// Virtual-time period of the fleet-wide pinned check.
    pub check_every: SimDuration,
}

/// One completed recovery: a tenant relocated after a device failure, or
/// restarted in place after a transient hang.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Fleet tenant id.
    pub tenant: usize,
    /// Source GPU slot (the casualty).
    pub from: usize,
    /// Target GPU slot (`from == to` for hang restarts).
    pub to: usize,
    /// What interrupted the tenant.
    pub kind: FaultKind,
    /// Fault onset (work stops here).
    pub at: SimTime,
    /// Instant the checkpointed work resumes on the target.
    pub resumed_at: SimTime,
    /// Whether a request was in flight at the barrier (re-run from
    /// scratch on the target).
    pub in_flight: bool,
    /// Requests preserved from the task queue, FIFO order kept.
    pub queued: u32,
    /// Undelivered future arrivals carried to the target.
    pub future: u32,
}

impl MigrationRecord {
    /// Time-to-recover: fault onset to work resumption.
    pub fn recovery(&self) -> SimDuration {
        self.resumed_at.duration_since(self.at)
    }
}

/// A casualty no surviving device could admit; its remaining requests are
/// lost and reported instead of silently dropped.
#[derive(Clone, Debug, PartialEq)]
pub struct StrandedTenant {
    /// Fleet tenant id.
    pub tenant: usize,
    /// The dead GPU it was evacuated from.
    pub gpu: usize,
    /// Fault onset.
    pub at: SimTime,
    /// Why re-placement failed (typed, e.g. [`PlacementError::NoCapacity`]).
    pub reason: PlacementError,
    /// Requests lost (in-flight + queued + undelivered arrivals).
    pub lost_requests: usize,
}

/// A scheduled fault that could not be applied: its device is already
/// dead or outside the placed fleet.
#[derive(Clone, Debug, PartialEq)]
pub struct SkippedFault {
    /// Scheduled onset.
    pub at: SimTime,
    /// The referenced GPU slot.
    pub gpu: usize,
    /// The fault class that was scheduled.
    pub kind: FaultKind,
    /// Always [`PlacementError::SourceDead`] today; typed for forward
    /// compatibility.
    pub reason: PlacementError,
}

/// Decides where an evacuated tenant lands after its device dies.
///
/// The policy consumes the same signals the initial placement used —
/// memory footprint, quota capacity, §4.2.2 kernel-granularity
/// admission — plus the degradation-ladder position carried in each
/// tenant's checkpoint: [`run_chaos`] evacuates the most-degraded
/// casualties first, so tenants deepest in the drift-watchdog ladder get
/// first pick of surviving capacity (they are the ones already running
/// with reduced sharing and can least afford to be stranded).
#[derive(Clone, Debug)]
pub struct MigrationPolicy {
    /// Admission rules for co-locating the migrant with a host's tenants.
    pub admission: AdmissionPolicy,
    /// Device memory of every GPU in the fleet (MiB).
    pub memory_mib: u64,
}

impl MigrationPolicy {
    /// Policy with the default admission rules for `memory_mib` devices.
    pub fn new(memory_mib: u64) -> Self {
        MigrationPolicy {
            admission: AdmissionPolicy::default(),
            memory_mib,
        }
    }

    /// First-fits `migrant` (fleet tenant `app`) onto an alive host slot.
    ///
    /// `hosts[h]` is `None` for dead devices, else the placement requests
    /// of the tenants currently provisioned there (including tenants that
    /// already finished — quota is provisioned capacity, not load, and
    /// staying conservative keeps re-placement deterministic). Returns
    /// [`PlacementError::NoCapacity`] when no alive device passes both
    /// the quota-capacity and admission checks.
    pub fn choose_target(
        &self,
        app: usize,
        migrant: &PlacementRequest,
        hosts: &[Option<Vec<PlacementRequest>>],
    ) -> Result<usize, PlacementError> {
        for (h, slot) in hosts.iter().enumerate() {
            let Some(members) = slot else { continue };
            let quota_used: f64 = members.iter().map(|m| m.quota).sum();
            if quota_used + migrant.quota > 1.0 + 1e-9 {
                continue;
            }
            let mut profiles: Vec<&ProfiledApp> = members.iter().map(|m| &*m.profile).collect();
            profiles.push(&migrant.profile);
            if admit(&profiles, self.memory_mib, &self.admission).is_ok() {
                return Ok(h);
            }
        }
        Err(PlacementError::NoCapacity { app })
    }
}

/// Knobs for [`run_chaos`].
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Drain surviving devices on a worker pool (`false` forces the
    /// sequential loop). Output is byte-identical either way.
    pub parallel: bool,
    /// Synthesize the fleet-level trace stream into [`ChaosRun::trace`].
    pub capture_trace: bool,
    /// Worker-pool size; `None` honours `std::thread::available_parallelism`.
    pub workers: Option<usize>,
    /// Modeled cost of moving a tenant checkpoint to another device and
    /// re-provisioning contexts there — the cross-device analogue of the
    /// 50 µs MPS context-switch vacuum, plus checkpoint transfer.
    pub migration_cost: SimDuration,
    /// Modeled device restart time after a transient hang clears.
    pub restart_cost: SimDuration,
    /// Per-fleet-tenant initial degradation-ladder positions, applied to
    /// every runtime before its first arrival (`None` = each tenant starts
    /// at [`ShareMode::SemiSpatial`], like a fresh driver). Lets drills
    /// start tenants mid-ladder deterministically.
    pub initial_modes: Option<Vec<ShareMode>>,
    /// Watchdog-driven planned evacuation of pinned tenants (`None`
    /// disables the periodic check).
    pub pinned_evacuation: Option<PinnedPolicy>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            parallel: true,
            capture_trace: false,
            workers: None,
            migration_cost: SimDuration::from_micros(250),
            restart_cost: SimDuration::from_micros(50),
            initial_modes: None,
            pinned_evacuation: None,
        }
    }
}

/// Result of a chaos run.
#[derive(Debug)]
pub struct ChaosRun {
    /// The initial placement (before any migration).
    pub placement: Placement,
    /// Fleet-level request log indexed by fleet tenant id. Arrival times
    /// are the *original* schedule, so latencies of migrated requests
    /// include the full disruption (quiesce + transfer + re-run).
    pub log: RequestLog,
    /// Every completed recovery, in application order.
    pub migrations: Vec<MigrationRecord>,
    /// Casualties that could not be re-placed, with typed reasons.
    pub stranded: Vec<StrandedTenant>,
    /// Scheduled faults that targeted dead or out-of-range devices.
    pub skipped: Vec<SkippedFault>,
    /// Synthesized fleet trace (empty unless
    /// [`ChaosOptions::capture_trace`]): request arrivals/completions at
    /// fleet tenant ids plus the device-failure/evacuation/restoration
    /// stream, in time order.
    pub trace: Vec<TraceEvent>,
    /// Final-drain outcome per GPU slot (`None` for devices that died).
    pub outcomes: Vec<Option<RunOutcome>>,
}

impl ChaosRun {
    /// Requests that never completed (stranded tenants' losses).
    pub fn lost_requests(&self) -> usize {
        (0..self.log.apps())
            .map(|a| self.log.records(a).len() - self.log.completed_count(a))
            .sum()
    }

    /// True when every request in the fleet completed.
    pub fn all_served(&self) -> bool {
        self.lost_requests() == 0
    }
}

/// One live incarnation of a GPU slot: a self-contained simulation plus
/// the mapping from its driver-local request ids back to fleet ids.
struct Slot {
    /// Fleet tenant ids, in driver app order.
    tenants: Vec<usize>,
    /// `req_map[app][local_req]` = fleet request id.
    req_map: Vec<Vec<usize>>,
    sim: Simulation<BlessDriver>,
}

/// A tenant's portable state between incarnations: ladder position plus
/// the requests to replay, already translated to fleet ids.
struct Evacuee {
    tenant: usize,
    mode: ShareMode,
    clean_squads: u32,
    /// Fleet request ids to re-run at the resume instant (the in-flight
    /// request first, then the task queue, FIFO preserved).
    outstanding: Vec<usize>,
    had_in_flight: bool,
    /// Undelivered arrivals: fleet request id and original time.
    future: Vec<(usize, SimTime)>,
}

impl Evacuee {
    fn has_work(&self) -> bool {
        !self.outstanding.is_empty() || !self.future.is_empty()
    }
}

/// Ladder severity for evacuation ordering: most degraded first.
fn ladder_rank(mode: ShareMode) -> u8 {
    match mode {
        ShareMode::Temporal => 0,
        ShareMode::StrictSpatial => 1,
        ShareMode::SemiSpatial => 2,
    }
}

/// One merged GPU-level fault event.
#[derive(Clone, Copy)]
struct FaultEvent {
    at: SimTime,
    gpu: usize,
    kind: FaultKind,
    /// Hang clear instant (`at` for failures).
    until: SimTime,
}

/// Runs a placed multi-GPU deployment under GPU-level fault injection.
///
/// `fault_seed` and `faults` fully determine the kill/hang schedule (via
/// [`FaultPlan::build`]); a `faults.num_gpus` of zero is defaulted to the
/// number of GPUs the placement actually uses. See the module docs for
/// the recovery model.
///
/// # Panics
///
/// Panics if any tenant uses a closed-loop arrival pattern (closed-loop
/// client state cannot be checkpointed across a migration).
#[allow(clippy::too_many_arguments)]
pub fn run_chaos<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    fault_seed: u64,
    faults: &FaultSpec,
    opts: &ChaosOptions,
) -> Result<ChaosRun, PlacementError> {
    if ws.tenants.is_empty() {
        return Err(PlacementError::EmptyWorkload);
    }
    if ws.len() != profiles.len() {
        return Err(PlacementError::ProfileCountMismatch {
            profiles: profiles.len(),
            tenants: ws.len(),
        });
    }
    for t in &ws.tenants {
        assert!(
            !matches!(t.pattern, ArrivalPattern::ClosedLoop { .. }),
            "run_chaos requires open-loop arrival patterns: closed-loop \
             client state cannot be checkpointed across a migration"
        );
    }
    let requests: Vec<PlacementRequest> = profiles
        .into_iter()
        .zip(&ws.tenants)
        .map(|(p, t)| PlacementRequest {
            profile: p.into(),
            quota: t.quota,
        })
        .collect();
    let placement = place(
        &requests,
        fleet_size,
        spec.memory_mib,
        &profiler::AdmissionPolicy::default(),
    )?;

    // The fault schedule is a pure function of (seed, spec); a zero
    // num_gpus means "size to the placement".
    let mut fspec = faults.clone();
    if fspec.num_gpus == 0 {
        fspec.num_gpus = placement.gpus_used as u32;
    }
    let plan = FaultPlan::build(fault_seed, &fspec);
    let policy = MigrationPolicy::new(spec.memory_mib);

    // Canonical fleet arrival schedule: per-GPU workloads generated
    // exactly as `run_cluster` does (seed + GPU offset, per-local-app
    // fork), remapped to fleet tenant ids. Arrival times in the fleet log
    // always come from this table, never from re-injection times.
    let mut fleet_arrivals: Vec<Vec<SimTime>> = vec![Vec::new(); ws.len()];
    let mut slots: Vec<Option<Slot>> = Vec::with_capacity(placement.gpus_used);
    for g in 0..placement.gpus_used {
        let tenants = placement.tenants_of(g);
        let local_ws = WorkloadSet::new(
            tenants
                .iter()
                .map(|&t| {
                    TenantSpec::new(
                        ws.tenants[t].model.clone(),
                        ws.tenants[t].quota,
                        ws.tenants[t].pattern.clone(),
                    )
                })
                .collect(),
            ws.seed.wrapping_add(g as u64),
        );
        let arrivals = local_ws.initial_arrivals();
        let mut req_map: Vec<Vec<usize>> = vec![Vec::new(); tenants.len()];
        for a in &arrivals {
            debug_assert_eq!(a.req, req_map[a.app].len());
            req_map[a.app].push(a.req);
            fleet_arrivals[tenants[a.app]].push(a.at);
        }
        // Open-loop fleet arrivals are emitted per app in time order, so
        // the per-tenant table above is already req-id ordered.
        let apps: Vec<DeployedApp> = tenants
            .iter()
            .map(|&t| {
                DeployedApp::new(
                    SharedProfile::clone(&requests[t].profile),
                    ws.tenants[t].quota,
                    None,
                )
            })
            .collect();
        let mut driver = BlessDriver::new(apps, params.clone());
        if let Some(modes) = &opts.initial_modes {
            assert_eq!(
                modes.len(),
                ws.len(),
                "initial_modes must cover every fleet tenant"
            );
            for (a, &t) in tenants.iter().enumerate() {
                driver.restore_share_mode(a, modes[t], 0);
            }
        }
        let gpu = Gpu::new(spec.clone(), HostCosts::paper());
        slots.push(Some(Slot {
            tenants,
            req_map,
            sim: Simulation::new(gpu, driver, arrivals),
        }));
    }

    // Completion table, filled as incarnations retire or finish.
    let mut completions: Vec<Vec<Option<SimTime>>> =
        fleet_arrivals.iter().map(|a| vec![None; a.len()]).collect();

    // Merge the kill and hang schedules into one deterministic sequence:
    // time order, failures before hangs on ties, device index last.
    let mut events: Vec<FaultEvent> = plan
        .gpu_failures()
        .iter()
        .map(|f| FaultEvent {
            at: f.at,
            gpu: f.gpu as usize,
            kind: FaultKind::Failure,
            until: f.at,
        })
        .chain(plan.gpu_hangs().iter().map(|h| FaultEvent {
            at: h.at,
            gpu: h.gpu as usize,
            kind: FaultKind::Hang,
            until: h.until,
        }))
        .filter(|e| e.at <= horizon)
        .collect();
    // Periodic pinned checks join the same deterministic sequence.
    if let Some(pp) = &opts.pinned_evacuation {
        assert!(
            pp.check_every.as_nanos() > 0,
            "pinned_evacuation.check_every must be positive"
        );
        let mut at = SimTime::ZERO + pp.check_every;
        while at <= horizon {
            events.push(FaultEvent {
                at,
                gpu: 0, // fleet-wide check; the slot field is unused
                kind: FaultKind::Pinned,
                until: at,
            });
            at += pp.check_every;
        }
    }
    events.sort_by_key(|e| (e.at, fault_rank(e.kind), e.gpu));

    let mut migrations: Vec<MigrationRecord> = Vec::new();
    let mut stranded: Vec<StrandedTenant> = Vec::new();
    let mut skipped: Vec<SkippedFault> = Vec::new();
    let mut fleet_events: Vec<TraceEvent> = Vec::new();
    // One planned move per tenant per run: evacuating a tenant that stays
    // pinned even on its new device would just thrash the fleet.
    let mut pinned_moved = vec![false; ws.len()];

    for ev in events {
        if matches!(ev.kind, FaultKind::Pinned) {
            let Some(pp) = opts.pinned_evacuation.as_ref() else {
                unreachable!("pinned checks are only scheduled with a policy")
            };
            // Advance every surviving device to the check barrier and read
            // the drift watchdog's pinned counter — virtual-time state, so
            // the outcome is independent of wall-clock interleaving and of
            // the final-drain worker count.
            let barrier = SimTime::from_nanos(ev.at.as_nanos().saturating_sub(1));
            let mut sources: Vec<(usize, Vec<usize>)> = Vec::new();
            for (g, s) in slots.iter_mut().enumerate() {
                let Some(slot) = s else { continue };
                slot.sim.run(barrier);
                let eligible: Vec<usize> = slot
                    .tenants
                    .iter()
                    .enumerate()
                    .filter(|&(a, &t)| {
                        !pinned_moved[t]
                            && slot.sim.driver.temporal_pinned_rounds(a) >= pp.after_rounds
                    })
                    .map(|(a, _)| a)
                    .collect();
                if !eligible.is_empty() {
                    sources.push((g, eligible));
                }
            }
            // Devices whose watchdogs report pinned tenants are excluded
            // as targets for this round: they are congested by definition,
            // and targeting a not-yet-processed source would re-place onto
            // a device about to be quiesced.
            let source_set: Vec<usize> = sources.iter().map(|&(g, _)| g).collect();
            for (g, eligible) in sources {
                let slot = slots[g]
                    .take()
                    .unwrap_or_else(|| unreachable!("source was alive at the check"));
                let evacuees = quiesce(slot, ev.at, &mut completions);
                let mut stay: Vec<Evacuee> = Vec::new();
                let mut movers: Vec<Evacuee> = Vec::new();
                for (a, e) in evacuees.into_iter().enumerate() {
                    if eligible.contains(&a) && e.has_work() {
                        movers.push(e);
                    } else {
                        stay.push(e);
                    }
                }
                // Re-place each pinned tenant on a *different* surviving
                // device under the same first-fit rules a failure uses; a
                // mover no device admits stays put — a planned evacuation
                // never strands work.
                let mut staged: Vec<Vec<Evacuee>> = (0..slots.len()).map(|_| Vec::new()).collect();
                for mut e in movers {
                    let migrant = PlacementRequest {
                        profile: SharedProfile::clone(&requests[e.tenant].profile),
                        quota: requests[e.tenant].quota,
                    };
                    let hosts: Vec<Option<Vec<PlacementRequest>>> = slots
                        .iter()
                        .enumerate()
                        .map(|(h, s)| {
                            if source_set.contains(&h) {
                                return None; // no source device, ever
                            }
                            s.as_ref().map(|s| {
                                s.tenants
                                    .iter()
                                    .copied()
                                    .chain(staged[h].iter().map(|m| m.tenant))
                                    .map(|t| PlacementRequest {
                                        profile: SharedProfile::clone(&requests[t].profile),
                                        quota: requests[t].quota,
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    match policy.choose_target(e.tenant, &migrant, &hosts) {
                        Ok(h) => {
                            // Fresh ladder start on the new device: the
                            // whole point of the move is that sharing on
                            // the old one kept the tenant at the bottom.
                            e.mode = ShareMode::SemiSpatial;
                            e.clean_squads = 0;
                            pinned_moved[e.tenant] = true;
                            staged[h].push(e);
                        }
                        Err(_) => stay.push(e),
                    }
                }
                let resume = ev.at + opts.migration_cost;
                for (h, migrants) in staged.into_iter().enumerate() {
                    if migrants.is_empty() {
                        continue;
                    }
                    let target = slots[h]
                        .take()
                        .unwrap_or_else(|| unreachable!("policy only selects alive targets"));
                    let mut all = quiesce(target, ev.at, &mut completions);
                    for e in migrants {
                        record_recovery(
                            &e,
                            g,
                            h,
                            FaultKind::Pinned,
                            ev.at,
                            resume,
                            &mut migrations,
                            opts.capture_trace.then_some(&mut fleet_events),
                        );
                        all.push(e);
                    }
                    slots[h] = Some(build_slot(all, resume, &requests, ws, spec, params));
                }
                // The source restarts its remaining tenants in place after
                // the context re-provisioning pause.
                slots[g] = Some(build_slot(
                    stay,
                    ev.at + opts.restart_cost,
                    &requests,
                    ws,
                    spec,
                    params,
                ));
            }
            continue;
        }
        let g = ev.gpu;
        let Some(slot) = slots.get_mut(g).and_then(Option::take) else {
            skipped.push(SkippedFault {
                at: ev.at,
                gpu: g,
                kind: ev.kind,
                reason: PlacementError::SourceDead { gpu: g },
            });
            continue;
        };
        let evacuees = quiesce(slot, ev.at, &mut completions);
        if opts.capture_trace {
            fleet_events.push(TraceEvent::DeviceFailed {
                at: ev.at,
                gpu: g as u32,
                permanent: matches!(ev.kind, FaultKind::Failure),
            });
        }
        match ev.kind {
            FaultKind::Hang => {
                // The device comes back: replay the checkpoint in place
                // once the hang clears plus the restart cost.
                let resume = ev.until + opts.restart_cost;
                for e in evacuees.iter().filter(|e| e.has_work()) {
                    record_recovery(
                        e,
                        g,
                        g,
                        FaultKind::Hang,
                        ev.at,
                        resume,
                        &mut migrations,
                        opts.capture_trace.then_some(&mut fleet_events),
                    );
                }
                slots[g] = Some(build_slot(evacuees, resume, &requests, ws, spec, params));
            }
            FaultKind::Failure => {
                // Evacuate casualties most-degraded-first so tenants deep
                // in the watchdog ladder get first pick of capacity.
                let mut movers: Vec<Evacuee> =
                    evacuees.into_iter().filter(Evacuee::has_work).collect();
                movers.sort_by_key(|e| (ladder_rank(e.mode), e.tenant));
                let mut staged: Vec<Vec<Evacuee>> = (0..slots.len()).map(|_| Vec::new()).collect();
                // Index the surviving fleet once per failure: leaf `h` is
                // host `h`'s provisioned quota folded in member order
                // (dead devices are infinite, so no query selects them),
                // and each staged migrant commits incrementally — the
                // same float fold [`MigrationPolicy::choose_target`]
                // recomputes from a cloned snapshot, minus the
                // O(fleet × tenants) rebuild per casualty. Targets are
                // byte-identical: the index walks hosts in the same
                // ascending order with the same capacity threshold, and
                // the admission check below sees the same member set.
                let used: Vec<f64> = slots
                    .iter()
                    .map(|s| match s {
                        Some(s) => s.tenants.iter().map(|&t| requests[t].quota).sum(),
                        None => f64::INFINITY,
                    })
                    .collect();
                let mut index = CapacityIndex::from_used(&used);
                let mut profiles: Vec<&ProfiledApp> = Vec::new();
                for e in movers {
                    let migrant = &requests[e.tenant];
                    let mut from = 0;
                    let mut chosen: Result<usize, PlacementError> =
                        Err(PlacementError::NoCapacity { app: e.tenant });
                    while let Some(h) = index.first_fit_from(from, migrant.quota) {
                        profiles.clear();
                        if let Some(s) = &slots[h] {
                            profiles.extend(s.tenants.iter().map(|&t| &*requests[t].profile));
                        }
                        profiles.extend(staged[h].iter().map(|m| &*requests[m.tenant].profile));
                        profiles.push(&migrant.profile);
                        if admit(&profiles, policy.memory_mib, &policy.admission).is_ok() {
                            chosen = Ok(h);
                            break;
                        }
                        from = h + 1;
                    }
                    match chosen {
                        Ok(h) => {
                            index.commit(h, migrant.quota);
                            staged[h].push(e);
                        }
                        Err(reason) => {
                            if opts.capture_trace {
                                fleet_events.push(TraceEvent::MigrationFailed {
                                    at: ev.at,
                                    app: e.tenant as u32,
                                    reason: match reason {
                                        PlacementError::SourceDead { .. } => 1,
                                        _ => 0,
                                    },
                                });
                            }
                            stranded.push(StrandedTenant {
                                tenant: e.tenant,
                                gpu: g,
                                at: ev.at,
                                reason,
                                lost_requests: e.outstanding.len() + e.future.len(),
                            });
                        }
                    }
                }
                let resume = ev.at + opts.migration_cost;
                for (h, migrants) in staged.into_iter().enumerate() {
                    if migrants.is_empty() {
                        continue;
                    }
                    // Admitting migrants re-provisions the target's MPS
                    // contexts, so the target is quiesced at the same
                    // barrier; its own tenants keep their ladder state and
                    // resume alongside the migrants.
                    let target = slots[h]
                        .take()
                        .unwrap_or_else(|| unreachable!("policy only selects alive targets"));
                    let mut all = quiesce(target, ev.at, &mut completions);
                    for e in migrants {
                        record_recovery(
                            &e,
                            g,
                            h,
                            FaultKind::Failure,
                            ev.at,
                            resume,
                            &mut migrations,
                            opts.capture_trace.then_some(&mut fleet_events),
                        );
                        all.push(e);
                    }
                    slots[h] = Some(build_slot(all, resume, &requests, ws, spec, params));
                }
            }
            FaultKind::Pinned => unreachable!("handled before the per-device dispatch"),
        }
    }

    // Final drain: surviving incarnations are mutually independent, so
    // they run to the horizon on a worker pool and merge by slot order.
    let mut work: Vec<(usize, Slot)> = Vec::new();
    for (g, s) in slots.iter_mut().enumerate() {
        if let Some(slot) = s.take() {
            work.push((g, slot));
        }
    }
    let workers = if opts.parallel {
        opts.workers
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1)
            .clamp(1, work.len().max(1))
    } else {
        1
    };
    let mut finished: Vec<(usize, Slot, RunOutcome)> = if workers <= 1 || work.len() <= 1 {
        work.into_iter()
            .map(|(g, mut slot)| {
                let outcome = slot.sim.run(horizon);
                (g, slot, outcome)
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let pending: Mutex<Vec<Option<(usize, Slot)>>> =
            Mutex::new(work.into_iter().map(Some).collect());
        let done = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let item = pending
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get_mut(i)
                        .and_then(Option::take);
                    let Some((g, mut slot)) = item else { break };
                    let outcome = slot.sim.run(horizon);
                    done.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((g, slot, outcome));
                });
            }
        });
        done.into_inner().unwrap_or_else(PoisonError::into_inner)
    };
    finished.sort_by_key(|(g, _, _)| *g);

    let mut outcomes: Vec<Option<RunOutcome>> = vec![None; placement.gpus_used];
    for (g, slot, outcome) in finished {
        harvest(&slot, &mut completions);
        outcomes[g] = Some(outcome);
    }

    // Fleet log: canonical arrival times, harvested completions.
    let mut log = RequestLog::new(ws.len());
    for (t, times) in fleet_arrivals.iter().enumerate() {
        for (r, &at) in times.iter().enumerate() {
            log.arrived(t, r, at);
            if let Some(c) = completions[t][r] {
                log.completed(t, r, c);
            }
        }
    }

    let trace = if opts.capture_trace {
        let mut all = fleet_events;
        for (t, times) in fleet_arrivals.iter().enumerate() {
            for (r, &at) in times.iter().enumerate() {
                all.push(TraceEvent::RequestArrival {
                    at,
                    app: t as u32,
                    req: r as u64,
                });
                if let Some(c) = completions[t][r] {
                    all.push(TraceEvent::RequestDone {
                        at: c,
                        app: t as u32,
                        req: r as u64,
                    });
                }
            }
        }
        all.sort_by_key(|e| e.at());
        all
    } else {
        Vec::new()
    };

    Ok(ChaosRun {
        placement,
        log,
        migrations,
        stranded,
        skipped,
        trace,
        outcomes,
    })
}

/// Copies an incarnation's completed requests into the fleet table.
fn harvest(slot: &Slot, completions: &mut [Vec<Option<SimTime>>]) {
    for (a, &t) in slot.tenants.iter().enumerate() {
        for rec in slot.sim.driver.log.records(a) {
            if let Some(c) = rec.completion {
                let fr = slot.req_map[a][rec.req];
                debug_assert!(
                    completions[t][fr].is_none(),
                    "request completed twice across incarnations"
                );
                completions[t][fr] = Some(c);
            }
        }
    }
}

/// Quiesces an incarnation at a barrier one nanosecond before `at`,
/// abandons its in-flight device work, and converts the driver checkpoint
/// plus the undelivered arrival tail into portable [`Evacuee`]s (fleet
/// ids). Completed requests are harvested before the incarnation drops.
fn quiesce(mut slot: Slot, at: SimTime, completions: &mut [Vec<Option<SimTime>>]) -> Vec<Evacuee> {
    let barrier = SimTime::from_nanos(at.as_nanos().saturating_sub(1));
    slot.sim.run(barrier);
    let _device = slot.sim.gpu.drain_snapshot();
    let ckpt: Vec<TenantCheckpoint> = slot.sim.driver.export_checkpoint();
    let futures: Vec<RequestArrival> = slot.sim.take_pending_arrivals();
    harvest(&slot, completions);

    let mut out: Vec<Evacuee> = slot
        .tenants
        .iter()
        .map(|&t| Evacuee {
            tenant: t,
            mode: ShareMode::SemiSpatial,
            clean_squads: 0,
            outstanding: Vec::new(),
            had_in_flight: false,
            future: Vec::new(),
        })
        .collect();
    for c in ckpt {
        let e = &mut out[c.app];
        e.mode = c.mode;
        e.clean_squads = c.clean_squads;
        if let Some(f) = c.in_flight {
            e.had_in_flight = true;
            e.outstanding.push(slot.req_map[c.app][f.req]);
        }
        for q in &c.queued {
            e.outstanding.push(slot.req_map[c.app][q.req]);
        }
    }
    // `take_pending_arrivals` returns time order, which for open-loop
    // streams is per-app request order.
    for a in futures {
        out[a.app].future.push((slot.req_map[a.app][a.req], a.at));
    }
    out
}

/// Builds a fresh incarnation from evacuee state: a new driver covering
/// the evacuees' tenants (ladder positions restored), with the preserved
/// requests re-injected at `resume` (outstanding work first, FIFO kept;
/// future arrivals at their original instants, clamped to `resume`) and
/// request ids renumbered densely per app, mapped back to fleet ids.
fn build_slot(
    evacuees: Vec<Evacuee>,
    resume: SimTime,
    requests: &[PlacementRequest],
    ws: &WorkloadSet,
    spec: &GpuSpec,
    params: &BlessParams,
) -> Slot {
    let apps: Vec<DeployedApp> = evacuees
        .iter()
        .map(|e| {
            DeployedApp::new(
                SharedProfile::clone(&requests[e.tenant].profile),
                ws.tenants[e.tenant].quota,
                None,
            )
        })
        .collect();
    let mut driver = BlessDriver::new(apps, params.clone());
    let mut arrivals: Vec<RequestArrival> = Vec::new();
    let mut req_map: Vec<Vec<usize>> = Vec::with_capacity(evacuees.len());
    for (a, e) in evacuees.iter().enumerate() {
        driver.restore_share_mode(a, e.mode, e.clean_squads);
        let mut map = Vec::with_capacity(e.outstanding.len() + e.future.len());
        for &fr in &e.outstanding {
            arrivals.push(RequestArrival {
                app: a,
                req: map.len(),
                at: resume,
            });
            map.push(fr);
        }
        for &(fr, at) in &e.future {
            arrivals.push(RequestArrival {
                app: a,
                req: map.len(),
                at: at.max(resume),
            });
            map.push(fr);
        }
        req_map.push(map);
    }
    let gpu = Gpu::new(spec.clone(), HostCosts::paper());
    Slot {
        tenants: evacuees.into_iter().map(|e| e.tenant).collect(),
        req_map,
        sim: Simulation::new(gpu, driver, arrivals),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_cluster_opts, ClusterOptions};
    use dnn_models::{AppModel, ModelKind, Phase};
    use profiler::ProfiledApp;

    const SEED: u64 = 23;

    /// `n` identical VGG tenants with the given quotas, open-loop periodic
    /// load (12 requests, 5 ms apart, staggered 1 ms per tenant).
    fn fixture(quotas: &[f64]) -> (GpuSpec, WorkloadSet, Vec<SharedProfile>) {
        let spec = GpuSpec::a100();
        let model = AppModel::build(ModelKind::Vgg11, Phase::Inference);
        let tenants: Vec<TenantSpec> = quotas
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                TenantSpec::new(
                    model.clone(),
                    q,
                    ArrivalPattern::Periodic {
                        period: SimDuration::from_millis(5),
                        count: 12,
                        offset: SimDuration::from_millis(i as u64),
                    },
                )
            })
            .collect();
        let profiles: Vec<SharedProfile> = quotas
            .iter()
            .map(|_| ProfiledApp::profile_shared(&model, &spec))
            .collect();
        (
            spec,
            WorkloadSet {
                tenants,
                seed: SEED,
            },
            profiles,
        )
    }

    fn horizon() -> SimTime {
        SimTime::from_secs(120)
    }

    /// Fault spec that kills `fails` devices and hangs `hangs` in the
    /// 5–25 ms window (while request work is outstanding).
    fn fault_spec(fails: u32, hangs: u32) -> FaultSpec {
        FaultSpec {
            num_gpus: 0, // sized to the placement
            gpu_fail_count: fails,
            gpu_fail_window: (SimTime::from_millis(5), SimTime::from_millis(25)),
            gpu_hang_count: hangs,
            gpu_hang_window: (SimTime::from_millis(5), SimTime::from_millis(25)),
            gpu_hang_len: SimDuration::from_millis(3),
            ..FaultSpec::default()
        }
    }

    /// Finds a fault seed whose first scheduled failure hits `gpu` in a
    /// `num_gpus`-device fleet (deterministic: the search is exhaustive
    /// over a fixed seed range).
    fn seed_hitting(gpu: u32, num_gpus: u32, spec: &FaultSpec) -> u64 {
        let spec = FaultSpec {
            num_gpus,
            ..spec.clone()
        };
        (0..256)
            .find(|&s| {
                FaultPlan::build(s, &spec)
                    .gpu_failures()
                    .first()
                    .map(|f| f.gpu)
                    == Some(gpu)
            })
            .unwrap()
    }

    fn per_tenant(log: &RequestLog, t: usize) -> Vec<(SimTime, Option<SimTime>)> {
        log.records(t)
            .iter()
            .map(|r| (r.arrival, r.completion))
            .collect()
    }

    #[test]
    fn none_plan_matches_run_cluster() {
        // 0.45 × 6 packs three GPUs: FFD fills pairs.
        let (spec, ws, profiles) = fixture(&[0.45; 6]);
        let params = BlessParams::default();
        let chaos = run_chaos(
            &ws,
            profiles.clone(),
            4,
            &spec,
            &params,
            horizon(),
            7,
            &FaultSpec::default(),
            &ChaosOptions::default(),
        )
        .unwrap();
        assert!(chaos.migrations.is_empty() && chaos.stranded.is_empty());
        assert!(chaos.all_served());

        let plain = run_cluster_opts(
            &ws,
            profiles,
            4,
            &spec,
            &params,
            horizon(),
            &ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(chaos.placement, plain.placement);
        for g in &plain.gpus {
            for (local, &t) in g.tenants.iter().enumerate() {
                let want: Vec<(SimTime, Option<SimTime>)> = g
                    .log
                    .records(local)
                    .iter()
                    .map(|r| (r.arrival, r.completion))
                    .collect();
                assert_eq!(per_tenant(&chaos.log, t), want, "tenant {t}");
            }
        }
    }

    #[test]
    fn failure_migrates_what_fits_and_strands_the_rest() {
        // GPU0 hosts t0+t1 (0.9), GPU1 hosts t2 (0.45). Killing GPU0
        // evacuates t0 (fits: 0.45 + 0.45 <= 1) and strands t1 (typed).
        let (spec, ws, profiles) = fixture(&[0.45, 0.45, 0.45]);
        let fspec = fault_spec(1, 0);
        let seed = seed_hitting(0, 2, &fspec);
        let opts = ChaosOptions {
            capture_trace: true,
            ..ChaosOptions::default()
        };
        let run = run_chaos(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            horizon(),
            seed,
            &fspec,
            &opts,
        )
        .unwrap();
        assert_eq!(run.placement.gpus_used, 2);

        assert_eq!(run.migrations.len(), 1);
        let m = run.migrations[0];
        assert_eq!(
            (m.tenant, m.from, m.to, m.kind),
            (0, 0, 1, FaultKind::Failure)
        );
        assert_eq!(m.recovery(), opts.migration_cost);
        assert!(m.in_flight || m.queued > 0 || m.future > 0);

        assert_eq!(run.stranded.len(), 1);
        let s = &run.stranded[0];
        assert_eq!((s.tenant, s.gpu), (1, 0));
        assert_eq!(s.reason, PlacementError::NoCapacity { app: 1 });
        assert!(s.lost_requests > 0);
        assert_eq!(run.lost_requests(), s.lost_requests);

        // The dead slot stays dead; survivors complete.
        assert_eq!(run.outcomes[0], None);
        assert_eq!(run.outcomes[1], Some(RunOutcome::Completed));
        // Migrated and untouched tenants finish every request.
        for t in [0usize, 2] {
            assert!(
                per_tenant(&run.log, t).iter().all(|(_, c)| c.is_some()),
                "tenant {t} lost requests"
            );
        }
        // Per-tenant FIFO survives the migration end-to-end.
        for t in 0..3 {
            let dones: Vec<SimTime> = per_tenant(&run.log, t)
                .iter()
                .filter_map(|&(_, c)| c)
                .collect();
            assert!(
                dones.windows(2).all(|w| w[0] <= w[1]),
                "tenant {t} reordered"
            );
        }

        // The synthesized trace carries the full recovery story.
        let kinds: Vec<&'static str> = run.trace.iter().map(|e| e.kind()).collect();
        for k in [
            "device_failed",
            "tenant_evacuated",
            "tenant_restored",
            "migration_failed",
        ] {
            assert!(kinds.contains(&k), "missing {k}");
        }
    }

    #[test]
    fn hang_restores_in_place() {
        // Both tenants on one GPU; a transient hang pauses and resumes it.
        let (spec, ws, profiles) = fixture(&[0.45, 0.45]);
        let fspec = fault_spec(0, 1);
        let opts = ChaosOptions::default();
        let run = run_chaos(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            horizon(),
            11,
            &fspec,
            &opts,
        )
        .unwrap();
        assert_eq!(run.placement.gpus_used, 1);
        assert!(!run.migrations.is_empty());
        for m in &run.migrations {
            assert_eq!(m.kind, FaultKind::Hang);
            assert_eq!(m.from, m.to);
            assert_eq!(
                m.recovery(),
                SimDuration::from_millis(3) + opts.restart_cost
            );
        }
        assert!(run.stranded.is_empty());
        assert!(run.all_served());
        assert_eq!(run.outcomes[0], Some(RunOutcome::Completed));
    }

    #[test]
    fn chaos_is_byte_identical_across_worker_counts() {
        let (spec, ws, profiles) = fixture(&[0.45; 6]);
        let fspec = fault_spec(2, 2);
        let params = BlessParams::default();
        let mk = |workers: Option<usize>, parallel: bool| {
            run_chaos(
                &ws,
                profiles.clone(),
                4,
                &spec,
                &params,
                horizon(),
                42,
                &fspec,
                &ChaosOptions {
                    parallel,
                    workers,
                    capture_trace: true,
                    ..ChaosOptions::default()
                },
            )
            .unwrap()
        };
        let seq = mk(None, false);
        let par = mk(Some(4), true);
        // The run actually exercised recovery.
        assert!(!seq.migrations.is_empty() || !seq.stranded.is_empty());
        assert_eq!(seq.migrations, par.migrations);
        assert_eq!(seq.stranded, par.stranded);
        assert_eq!(seq.skipped, par.skipped);
        assert_eq!(seq.outcomes, par.outcomes);
        assert_eq!(seq.trace, par.trace);
        for t in 0..ws.len() {
            assert_eq!(
                per_tenant(&seq.log, t),
                per_tenant(&par.log, t),
                "tenant {t}"
            );
        }
    }

    /// The recovery schedule — who moved where, when work resumed, who
    /// was stranded, and the resulting fleet log — pinned to a golden
    /// digest at worker counts 1/2/4. Catches both nondeterminism in the
    /// worker pool and any behavioral drift in the index-backed
    /// evacuation path (which must match the linear
    /// [`MigrationPolicy::choose_target`] scan byte-for-byte).
    #[test]
    fn recovery_schedule_digest_is_pinned_at_any_worker_count() {
        let (spec, ws, profiles) = fixture(&[0.45; 6]);
        let fspec = fault_spec(2, 2);
        let params = BlessParams::default();
        let digest_of = |run: &ChaosRun| {
            let mut f = metrics::Fnv::new();
            f.write_u64(run.migrations.len() as u64);
            for m in &run.migrations {
                f.write_u64(m.tenant as u64);
                f.write_u64(m.from as u64);
                f.write_u64(m.to as u64);
                f.write_u64(u64::from(matches!(m.kind, FaultKind::Failure)));
                f.write_u64(m.at.as_nanos());
                f.write_u64(m.resumed_at.as_nanos());
                f.write_u64(u64::from(m.in_flight));
                f.write_u64(u64::from(m.queued));
                f.write_u64(u64::from(m.future));
            }
            f.write_u64(run.stranded.len() as u64);
            for s in &run.stranded {
                f.write_u64(s.tenant as u64);
                f.write_u64(s.gpu as u64);
                f.write_u64(s.at.as_nanos());
                f.write_u64(s.lost_requests as u64);
            }
            f.write_u64(run.log.digest());
            f.finish()
        };
        let mut digests = Vec::new();
        for workers in [1usize, 2, 4] {
            let run = run_chaos(
                &ws,
                profiles.clone(),
                4,
                &spec,
                &params,
                horizon(),
                42,
                &fspec,
                &ChaosOptions {
                    parallel: workers > 1,
                    workers: Some(workers),
                    ..ChaosOptions::default()
                },
            )
            .unwrap();
            assert!(
                !run.migrations.is_empty() || !run.stranded.is_empty(),
                "fixture must exercise recovery"
            );
            digests.push(digest_of(&run));
        }
        assert!(
            digests.iter().all(|&d| d == digests[0]),
            "recovery schedule varies with worker count: {digests:x?}"
        );
        assert_eq!(
            digests[0], GOLDEN_RECOVERY_DIGEST,
            "recovery schedule drifted from the pinned golden \
             (got {:#018x}); placement or migration behavior changed",
            digests[0]
        );
    }

    /// Golden for [`recovery_schedule_digest_is_pinned_at_any_worker_count`]:
    /// seed-42 faults over the 6×0.45-quota fixture on a 4-GPU fleet.
    const GOLDEN_RECOVERY_DIGEST: u64 = 0x6e6a_8965_7b82_5356;

    #[test]
    fn faults_on_unplaced_devices_are_skipped_with_typed_reason() {
        // The spec claims an 8-GPU fleet but the placement uses 1: every
        // failure drawn on slots 1..8 is reported, not silently dropped.
        let (spec, ws, profiles) = fixture(&[0.45, 0.45]);
        let fspec = FaultSpec {
            num_gpus: 8,
            ..fault_spec(8, 0)
        };
        let run = run_chaos(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            horizon(),
            3,
            &fspec,
            &ChaosOptions::default(),
        )
        .unwrap();
        assert_eq!(run.placement.gpus_used, 1);
        assert!(!run.skipped.is_empty());
        for sk in &run.skipped {
            assert!(sk.gpu >= 1);
            assert_eq!(sk.reason, PlacementError::SourceDead { gpu: sk.gpu });
        }
    }

    #[test]
    fn migration_policy_first_fits_and_types_failures() {
        let spec = GpuSpec::a100();
        let model = AppModel::build(ModelKind::Vgg11, Phase::Inference);
        let profile = ProfiledApp::profile_shared(&model, &spec);
        let req = |quota: f64| PlacementRequest {
            profile: SharedProfile::clone(&profile),
            quota,
        };
        let policy = MigrationPolicy::new(spec.memory_mib);
        // Slot 0 dead, slot 1 nearly full, slot 2 has room.
        let hosts = vec![None, Some(vec![req(0.8)]), Some(vec![req(0.3)])];
        assert_eq!(policy.choose_target(7, &req(0.5), &hosts), Ok(2));
        // A small migrant fits the earlier slot first.
        assert_eq!(policy.choose_target(7, &req(0.2), &hosts), Ok(1));
        // Nothing admits a full-GPU migrant.
        assert_eq!(
            policy.choose_target(7, &req(1.0), &hosts),
            Err(PlacementError::NoCapacity { app: 7 })
        );
    }

    /// Watchdog-enabled params whose thresholds never fire organically:
    /// only the `initial_modes` pin puts a tenant at `Temporal`, and it
    /// never promotes — isolating the pinned-evacuation path.
    fn pinned_params() -> BlessParams {
        BlessParams {
            watchdog: Some(bless::WatchdogParams {
                degrade_threshold: 1000.0,
                promote_after: 100_000,
            }),
            ..BlessParams::default()
        }
    }

    fn pinned_opts() -> ChaosOptions {
        ChaosOptions {
            capture_trace: true,
            // Tenant 0 starts pinned at the ladder's bottom; its GPU0
            // neighbour and the GPU1 tenant start fresh.
            initial_modes: Some(vec![
                ShareMode::Temporal,
                ShareMode::SemiSpatial,
                ShareMode::SemiSpatial,
            ]),
            pinned_evacuation: Some(PinnedPolicy {
                after_rounds: 2,
                check_every: SimDuration::from_millis(10),
            }),
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn pinned_tenant_is_evacuated_once() {
        // 0.45 × 3 packs tenants 0+1 on GPU0 and tenant 2 on GPU1, so
        // GPU1 has quota room for the evacuee.
        let (spec, ws, profiles) = fixture(&[0.45, 0.45, 0.45]);
        let run = run_chaos(
            &ws,
            profiles,
            4,
            &spec,
            &pinned_params(),
            horizon(),
            7,
            &FaultSpec::default(),
            &pinned_opts(),
        )
        .unwrap();

        // Exactly one planned move: tenant 0, off its original device,
        // once — later checks see `pinned_moved` and stay quiet.
        assert_eq!(run.migrations.len(), 1, "got {:?}", run.migrations);
        let m = run.migrations[0];
        assert_eq!(m.tenant, 0);
        assert_eq!(m.kind, FaultKind::Pinned);
        assert_ne!(m.from, m.to);
        assert_eq!(
            m.resumed_at.duration_since(m.at),
            ChaosOptions::default().migration_cost
        );
        assert!(run.stranded.is_empty() && run.skipped.is_empty());
        assert!(run.all_served(), "lost {} requests", run.lost_requests());

        // The synthesized trace carries the planned move.
        let kinds: Vec<&'static str> = run.trace.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"tenant_evacuated"));
        assert!(kinds.contains(&"tenant_restored"));
    }

    #[test]
    fn pinned_evacuation_without_watchdog_is_inert() {
        // Default params leave the watchdog off, so the pinned counter
        // never ticks and every periodic check finds nothing.
        let (spec, ws, profiles) = fixture(&[0.45, 0.45, 0.45]);
        let run = run_chaos(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            horizon(),
            7,
            &FaultSpec::default(),
            &ChaosOptions {
                capture_trace: false,
                ..pinned_opts()
            },
        )
        .unwrap();
        assert!(run.migrations.is_empty());
        assert!(run.all_served());
    }

    #[test]
    fn pinned_evacuation_digest_is_seeded_and_worker_invariant() {
        // Byte-identical request log at every worker count, pinned to a
        // golden digest so behavioural drift in the evacuation path shows
        // up as a test failure, not a silent change.
        const GOLDEN: u64 = 0xf9d5_01b3_0a3a_e06b;
        let (spec, ws, profiles) = fixture(&[0.45, 0.45, 0.45]);
        for workers in [1usize, 2, 4] {
            let run = run_chaos(
                &ws,
                profiles.clone(),
                4,
                &spec,
                &pinned_params(),
                horizon(),
                7,
                &FaultSpec::default(),
                &ChaosOptions {
                    capture_trace: false,
                    workers: Some(workers),
                    ..pinned_opts()
                },
            )
            .unwrap();
            assert_eq!(run.migrations.len(), 1);
            assert_eq!(
                run.log.digest(),
                GOLDEN,
                "pinned-evacuation digest drifted at workers={workers}"
            );
        }
    }
}

/// Appends one recovery to the record list and (optionally) the fleet
/// trace stream.
#[allow(clippy::too_many_arguments)]
fn record_recovery(
    e: &Evacuee,
    from: usize,
    to: usize,
    kind: FaultKind,
    at: SimTime,
    resume: SimTime,
    migrations: &mut Vec<MigrationRecord>,
    fleet_events: Option<&mut Vec<TraceEvent>>,
) {
    migrations.push(MigrationRecord {
        tenant: e.tenant,
        from,
        to,
        kind,
        at,
        resumed_at: resume,
        in_flight: e.had_in_flight,
        queued: (e.outstanding.len() - usize::from(e.had_in_flight)) as u32,
        future: e.future.len() as u32,
    });
    if let Some(events) = fleet_events {
        events.push(TraceEvent::TenantEvacuated {
            at,
            gpu: from as u32,
            app: e.tenant as u32,
            in_flight: u32::from(e.had_in_flight),
            queued: (e.outstanding.len() - usize::from(e.had_in_flight)) as u32,
        });
        events.push(TraceEvent::TenantRestored {
            at: resume,
            gpu: to as u32,
            app: e.tenant as u32,
            recovery_ns: resume.duration_since(at).as_nanos(),
        });
    }
}
