#![warn(missing_docs)]

//! Multi-GPU deployment: the paper's §4.2.2 extension.
//!
//! > "As for the scenario in which applications have to be coordinated and
//! > deployed on multiple GPUs as GPUlet, BLESS can also be extended by
//! > replicating its runtime components for each active GPU. In such a
//! > case, a central controller can leverage the memory requirement and
//! > profiled kernel information to decide which specific GPU to place
//! > applications to avoid conflict."
//!
//! This crate implements exactly that: [`place`] packs profiled
//! applications onto a fleet of identical GPUs — honoring device memory,
//! quota capacity, and the §4.2.2 kernel-granularity compatibility rule —
//! and [`run_cluster`] replicates the BLESS runtime per GPU and serves
//! each GPU's tenants independently (see [`ClusterRun`]).
//!
//! Placed GPUs are mutually independent, so [`run_cluster`] simulates
//! them on a worker pool; [`run_cluster_seq`] is the sequential twin the
//! differential determinism test compares against, and
//! [`run_cluster_opts`] exposes per-GPU trace capture for the
//! `experiments --trace` pipeline.

pub mod chaos;
pub mod placement;
pub mod run;

pub use chaos::{
    run_chaos, ChaosOptions, ChaosRun, FaultKind, MigrationPolicy, MigrationRecord, PinnedPolicy,
    SkippedFault, StrandedTenant,
};
pub use placement::{
    place, place_linear, place_with, predicted_fleet_slowdown, ContentionOpts, Placement,
    PlacementError, PlacementPolicy, PlacementRequest,
};
pub use run::{
    run_cluster, run_cluster_opts, run_cluster_seq, run_cluster_stream, ClusterOptions, ClusterRun,
    FleetSummary, GpuRun,
};
