//! Running a placed multi-GPU deployment: one replicated BLESS runtime
//! per GPU, each driving its own simulated device.
//!
//! GPUs are mutually independent once placed — each gets its own
//! [`Gpu`], [`BlessDriver`], arrival stream, and (optionally) trace sink —
//! so the fleet is simulated on *sharded* worker threads: each worker
//! owns a fixed contiguous GPU range (a shard) and drains it
//! front-to-back, stealing from the tail of other shards once its own is
//! dry (DESIGN.md §5k). Results land in a preallocated per-GPU slot
//! arena, so the placement-order merge is a pure move and the merged
//! [`ClusterRun`] is byte-identical to the sequential twin
//! ([`run_cluster_seq`]) at any worker count.
//!
//! At fleet scale, materializing every [`GpuRun`] is the memory
//! bottleneck, not the simulation: [`run_cluster_stream`] folds each
//! GPU's result into a [`FleetSummary`] the moment it finishes and drops
//! the per-GPU buffers, keeping resident memory O(workers) instead of
//! O(fleet) while the summary (including its request-log digest) stays
//! byte-identical across worker counts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use bless::{BlessDriver, BlessParams, DeployedApp};
use gpu_sim::{BufferSink, Gpu, GpuSpec, HostCosts, RequestArrival, RunOutcome, Simulation};
use metrics::{Fnv, RequestLog, ShareMode};
use profiler::SharedProfile;
use sim_core::trace::TraceEvent;
use sim_core::SimTime;
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

use crate::placement::{place_with, Placement, PlacementError, PlacementPolicy, PlacementRequest};

/// Result of one GPU's run within the cluster.
#[derive(Debug)]
pub struct GpuRun {
    /// This GPU's index within the placement.
    pub gpu: usize,
    /// Request indices (into the cluster's tenant list) served here.
    pub tenants: Vec<usize>,
    /// The GPU-local request log (indexed by local tenant position).
    pub log: RequestLog,
    /// Simulation outcome.
    pub outcome: RunOutcome,
    /// GPU utilization over its makespan.
    pub utilization: f64,
    /// Number of engine lanes this GPU ran on. `1` is the monolithic
    /// engine; more means the tenancy was fully sharded
    /// ([`bless::LaneHints::is_fully_sharded`]) and each tenant ran on
    /// its own isolated lane.
    pub lanes: usize,
    /// This GPU's structured trace stream (empty unless
    /// [`ClusterOptions::capture_trace`] was set). Events are GPU-local:
    /// app ids index into `tenants`.
    pub trace: Vec<TraceEvent>,
}

/// Result of a whole cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// The placement used.
    pub placement: Placement,
    /// Per-GPU results, in placement order.
    pub gpus: Vec<GpuRun>,
}

impl ClusterRun {
    /// Mean latency (ms) of one cluster-level tenant.
    pub fn tenant_mean_ms(&self, tenant: usize) -> Option<f64> {
        let gpu = *self.placement.assignments.get(tenant)?;
        let local = self.gpus[gpu].tenants.iter().position(|&t| t == tenant)?;
        self.gpus[gpu]
            .log
            .stats(local)
            .mean
            .map(|d| d.as_millis_f64())
    }

    /// True when every GPU completed all its requests.
    pub fn all_completed(&self) -> bool {
        self.gpus.iter().all(|g| g.outcome == RunOutcome::Completed)
    }
}

/// Knobs for [`run_cluster_opts`].
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Simulate GPUs on a worker pool (`false` forces the sequential
    /// loop). Output is byte-identical either way.
    pub parallel: bool,
    /// Record each GPU's structured trace stream into
    /// [`GpuRun::trace`].
    pub capture_trace: bool,
    /// Worker-pool size; `None` honours `std::thread::available_parallelism`.
    pub workers: Option<usize>,
    /// Shard a GPU into per-tenant lanes automatically when its
    /// [`BlessDriver::lane_hints`] report a fully sharded tenancy (every
    /// tenant strict-spatial behind its own hard SM cap). Per DESIGN.md
    /// §5h the split is exact for decoupled physics and drops only the
    /// cross-partition memory-interference term otherwise; it never
    /// triggers for tenancies that can reach the shared pool. On by
    /// default — a freshly deployed fleet starts semi-spatial, so the
    /// hint only holds when [`ClusterOptions::initial_modes`] (or a
    /// checkpoint restore) pins every tenant strict-spatial.
    pub lane_sharding: bool,
    /// Initial degradation-ladder position per fleet tenant, restored
    /// into each GPU's driver before the first arrival (the same
    /// mechanism a migration uses to carry ladder state). `None` deploys
    /// everyone semi-spatial as usual.
    pub initial_modes: Option<Vec<ShareMode>>,
    /// How tenants are matched to GPUs during placement
    /// ([`PlacementPolicy::FirstFit`] by default;
    /// [`PlacementPolicy::ContentionAware`] scores candidates by
    /// predicted bottleneck-channel overlap).
    pub placement_policy: PlacementPolicy,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            parallel: true,
            capture_trace: false,
            workers: None,
            lane_sharding: true,
            initial_modes: None,
            placement_policy: PlacementPolicy::FirstFit,
        }
    }
}

/// Places the workload's tenants onto a fleet and serves each GPU with a
/// replicated BLESS runtime, simulating GPUs in parallel.
///
/// `profiles` must align with `ws.tenants` (one profile per tenant, on the
/// fleet's GPU spec). Pass [`SharedProfile`] handles to avoid deep-copying
/// kernel tables; plain [`profiler::ProfiledApp`] values are accepted and
/// interned on entry.
pub fn run_cluster<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
) -> Result<ClusterRun, PlacementError> {
    run_cluster_opts(
        ws,
        profiles,
        fleet_size,
        spec,
        params,
        horizon,
        &ClusterOptions::default(),
    )
}

/// [`run_cluster`] forced onto the sequential single-thread path. Exists
/// as the differential-determinism twin: the parallel runner must produce
/// byte-identical output to this.
pub fn run_cluster_seq<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
) -> Result<ClusterRun, PlacementError> {
    run_cluster_opts(
        ws,
        profiles,
        fleet_size,
        spec,
        params,
        horizon,
        &ClusterOptions {
            parallel: false,
            ..ClusterOptions::default()
        },
    )
}

/// [`run_cluster`] with explicit [`ClusterOptions`].
pub fn run_cluster_opts<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
) -> Result<ClusterRun, PlacementError> {
    if ws.tenants.is_empty() {
        return Err(PlacementError::EmptyWorkload);
    }
    if ws.len() != profiles.len() {
        return Err(PlacementError::ProfileCountMismatch {
            profiles: profiles.len(),
            tenants: ws.len(),
        });
    }
    if let Some(modes) = &opts.initial_modes {
        assert_eq!(
            modes.len(),
            ws.len(),
            "initial_modes needs one entry per tenant"
        );
    }
    let requests: Vec<PlacementRequest> = profiles
        .into_iter()
        .zip(&ws.tenants)
        .map(|(p, t)| PlacementRequest {
            profile: p.into(),
            quota: t.quota,
        })
        .collect();
    let placement = place_with(
        &requests,
        fleet_size,
        spec.memory_mib,
        &profiler::AdmissionPolicy::default(),
        &opts.placement_policy,
    )?;

    let workers = worker_count(opts, placement.gpus_used);
    let gpus = if workers <= 1 || placement.gpus_used <= 1 {
        (0..placement.gpus_used)
            .map(|g| run_one_gpu(g, &placement, ws, &requests, spec, params, horizon, opts))
            .collect()
    } else {
        run_gpus_parallel(
            &placement, ws, &requests, spec, params, horizon, opts, workers,
        )
    };

    Ok(ClusterRun { placement, gpus })
}

/// Resolves [`ClusterOptions`] into an effective worker count for a fleet
/// of `gpus` devices.
fn worker_count(opts: &ClusterOptions, gpus: usize) -> usize {
    if opts.parallel {
        opts.workers
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1)
            .clamp(1, gpus.max(1))
    } else {
        1
    }
}

/// Fixed GPU-range shards with tail stealing.
///
/// Shard `s` owns the contiguous range `[s·chunk, (s+1)·chunk)` and
/// drains it front-to-back; a worker whose shard runs dry steals from the
/// *tail* of the next non-empty shard, so stolen work is the work the
/// owner would have reached last. Contiguous ranges keep each worker's
/// slot-arena writes clustered; stealing absorbs load imbalance from
/// heterogeneous tenancies without perturbing the output (results are
/// keyed by GPU index, never by completion order).
struct ShardPool {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl ShardPool {
    fn new(gpus: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let chunk = gpus.div_ceil(shards);
        let queues = (0..shards)
            .map(|s| {
                let lo = (s * chunk).min(gpus);
                let hi = ((s + 1) * chunk).min(gpus);
                Mutex::new((lo..hi).collect())
            })
            .collect();
        ShardPool { queues }
    }

    /// Next GPU for worker `shard`: its own shard's head, else a steal
    /// from the tail of the nearest non-empty shard, else `None` (all
    /// work claimed; no new work is ever produced, so `None` is final).
    fn next(&self, shard: usize) -> Option<usize> {
        if let Some(g) = self.queues[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            return Some(g);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (shard + off) % n;
            if let Some(g) = self.queues[victim]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
            {
                return Some(g);
            }
        }
        None
    }
}

/// Simulates the fleet on `workers` sharded threads, handing each
/// finished [`GpuRun`] to `consume` (on the worker thread that produced
/// it). Both fleet paths build on this: the materializing path's consumer
/// moves the run into its slot arena; the streaming path's folds it into
/// a [`FleetSummary`] and drops it.
#[allow(clippy::too_many_arguments)]
fn run_gpus_sharded<F>(
    placement: &Placement,
    ws: &WorkloadSet,
    requests: &[PlacementRequest],
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
    workers: usize,
    consume: &F,
) where
    F: Fn(GpuRun) + Sync,
{
    let pool = ShardPool::new(placement.gpus_used, workers);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let pool = &pool;
            scope.spawn(move || {
                while let Some(g) = pool.next(w) {
                    consume(run_one_gpu(
                        g, placement, ws, requests, spec, params, horizon, opts,
                    ));
                }
            });
        }
    });
}

/// Materializing fleet run: every GPU's result lands in a preallocated
/// per-GPU slot, so the placement-order merge is a pure move — the output
/// is byte-identical to the sequential loop at any worker count.
#[allow(clippy::too_many_arguments)]
fn run_gpus_parallel(
    placement: &Placement,
    ws: &WorkloadSet,
    requests: &[PlacementRequest],
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
    workers: usize,
) -> Vec<GpuRun> {
    let slots: Vec<Mutex<Option<GpuRun>>> =
        (0..placement.gpus_used).map(|_| Mutex::new(None)).collect();
    run_gpus_sharded(
        placement,
        ws,
        requests,
        spec,
        params,
        horizon,
        opts,
        workers,
        &|run: GpuRun| {
            let g = run.gpu;
            *slots[g].lock().unwrap_or_else(PoisonError::into_inner) = Some(run);
        },
    );
    // A panicking worker propagates out of the scope above, so every slot
    // holds exactly one result here.
    slots
        .into_iter()
        .enumerate()
        .map(|(g, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| panic!("gpu {g} produced no result"))
        })
        .collect()
}

/// Streaming summary of a fleet run — everything the fleet-scale
/// experiments need, at O(1) size per GPU (two words: digest and
/// utilization) instead of a materialized [`GpuRun`].
///
/// All fields are byte-stable across worker counts: counters are exact
/// integer sums (commutative), and the two order-sensitive folds (the
/// fleet digest and the utilization mean) run over per-GPU slots in GPU
/// index order after the workers join.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSummary {
    /// The placement that was simulated.
    pub placement: Placement,
    /// GPUs whose simulation completed every request.
    pub completed_gpus: usize,
    /// Requests that arrived fleet-wide.
    pub arrived_requests: u64,
    /// Requests that completed fleet-wide.
    pub completed_requests: u64,
    /// Exact sum of completed-request latencies, in nanoseconds.
    pub latency_sum_ns: u64,
    /// Worst completed-request latency, in nanoseconds.
    pub max_latency_ns: u64,
    /// Mean per-GPU utilization (folded in GPU order).
    pub mean_utilization: f64,
    /// FNV-1a fold of every GPU's request-log digest, in GPU order —
    /// byte-identical to hashing the sequential run's logs.
    pub digest: u64,
}

impl FleetSummary {
    /// Mean completed-request latency in milliseconds, if any completed.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.completed_requests == 0 {
            return None;
        }
        Some(self.latency_sum_ns as f64 / self.completed_requests as f64 / 1e6)
    }

    /// True when every GPU completed all its requests.
    pub fn all_completed(&self) -> bool {
        self.completed_gpus == self.placement.gpus_used
    }
}

/// The shared fold target of [`run_cluster_stream`]: commutative atomic
/// counters plus per-GPU word slots for the order-sensitive parts.
struct FleetAccumulator {
    digests: Vec<AtomicU64>,
    utilization_bits: Vec<AtomicU64>,
    completed_gpus: AtomicUsize,
    arrived: AtomicU64,
    completed: AtomicU64,
    latency_ns: AtomicU64,
    max_latency_ns: AtomicU64,
}

impl FleetAccumulator {
    fn new(gpus: usize) -> Self {
        FleetAccumulator {
            digests: (0..gpus).map(|_| AtomicU64::new(0)).collect(),
            utilization_bits: (0..gpus).map(|_| AtomicU64::new(0)).collect(),
            completed_gpus: AtomicUsize::new(0),
            arrived: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            latency_ns: AtomicU64::new(0),
            max_latency_ns: AtomicU64::new(0),
        }
    }

    /// Folds one GPU's result in; the caller drops the run (and its log,
    /// trace, and tenant buffers) immediately after.
    fn fold(&self, run: &GpuRun) {
        let mut arrived = 0u64;
        let mut completed = 0u64;
        let mut latency = 0u64;
        let mut max_latency = 0u64;
        for app in 0..run.tenants.len() {
            for r in run.log.records(app) {
                arrived += 1;
                if let Some(l) = r.latency() {
                    completed += 1;
                    latency += l.as_nanos();
                    max_latency = max_latency.max(l.as_nanos());
                }
            }
        }
        self.arrived.fetch_add(arrived, Ordering::Relaxed);
        self.completed.fetch_add(completed, Ordering::Relaxed);
        self.latency_ns.fetch_add(latency, Ordering::Relaxed);
        self.max_latency_ns
            .fetch_max(max_latency, Ordering::Relaxed);
        if run.outcome == RunOutcome::Completed {
            self.completed_gpus.fetch_add(1, Ordering::Relaxed);
        }
        self.digests[run.gpu].store(run.log.digest(), Ordering::Relaxed);
        self.utilization_bits[run.gpu].store(run.utilization.to_bits(), Ordering::Relaxed);
    }

    /// Final GPU-order folds, after all workers joined.
    fn finish(self, placement: Placement) -> FleetSummary {
        let mut h = Fnv::new();
        let mut util_sum = 0.0f64;
        for (d, u) in self.digests.iter().zip(&self.utilization_bits) {
            h.write_u64(d.load(Ordering::Relaxed));
            util_sum += f64::from_bits(u.load(Ordering::Relaxed));
        }
        let gpus = self.digests.len();
        FleetSummary {
            placement,
            completed_gpus: self.completed_gpus.into_inner(),
            arrived_requests: self.arrived.into_inner(),
            completed_requests: self.completed.into_inner(),
            latency_sum_ns: self.latency_ns.into_inner(),
            max_latency_ns: self.max_latency_ns.into_inner(),
            mean_utilization: if gpus > 0 {
                util_sum / gpus as f64
            } else {
                0.0
            },
            digest: h.finish(),
        }
    }
}

/// [`run_cluster_opts`] for fleets too big to materialize: each GPU's
/// result folds into a [`FleetSummary`] the moment it finishes and its
/// buffers are freed, so resident memory stays O(workers) GPU results
/// (plus two words per GPU) instead of O(fleet). The summary — including
/// its fleet digest — is byte-identical across worker counts and to
/// summarizing a materialized [`run_cluster_seq`] run.
///
/// Trace capture is refused (a fleet-wide trace is exactly the O(fleet)
/// buffer this path exists to avoid); use [`run_cluster_opts`] for that.
///
/// # Panics
///
/// Panics if `opts.capture_trace` is set.
pub fn run_cluster_stream<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
) -> Result<FleetSummary, PlacementError> {
    assert!(
        !opts.capture_trace,
        "run_cluster_stream cannot capture traces; use run_cluster_opts"
    );
    if ws.tenants.is_empty() {
        return Err(PlacementError::EmptyWorkload);
    }
    if ws.len() != profiles.len() {
        return Err(PlacementError::ProfileCountMismatch {
            profiles: profiles.len(),
            tenants: ws.len(),
        });
    }
    if let Some(modes) = &opts.initial_modes {
        assert_eq!(
            modes.len(),
            ws.len(),
            "initial_modes needs one entry per tenant"
        );
    }
    let requests: Vec<PlacementRequest> = profiles
        .into_iter()
        .zip(&ws.tenants)
        .map(|(p, t)| PlacementRequest {
            profile: p.into(),
            quota: t.quota,
        })
        .collect();
    let placement = place_with(
        &requests,
        fleet_size,
        spec.memory_mib,
        &profiler::AdmissionPolicy::default(),
        &opts.placement_policy,
    )?;

    let acc = FleetAccumulator::new(placement.gpus_used);
    let workers = worker_count(opts, placement.gpus_used);
    if workers <= 1 || placement.gpus_used <= 1 {
        for g in 0..placement.gpus_used {
            acc.fold(&run_one_gpu(
                g, &placement, ws, &requests, spec, params, horizon, opts,
            ));
        }
    } else {
        run_gpus_sharded(
            &placement,
            ws,
            &requests,
            spec,
            params,
            horizon,
            opts,
            workers,
            &|run: GpuRun| acc.fold(&run),
        );
    }
    Ok(acc.finish(placement))
}

/// Simulates one GPU's tenants to completion — the unit of work both the
/// sequential loop and the worker pool execute.
#[allow(clippy::too_many_arguments)]
fn run_one_gpu(
    g: usize,
    placement: &Placement,
    ws: &WorkloadSet,
    requests: &[PlacementRequest],
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
) -> GpuRun {
    let tenants = placement.tenants_of(g);
    // Build a GPU-local workload with remapped app ids.
    let local_ws = WorkloadSet::new(
        tenants
            .iter()
            .map(|&t| {
                TenantSpec::new(
                    ws.tenants[t].model.clone(),
                    ws.tenants[t].quota,
                    ws.tenants[t].pattern.clone(),
                )
            })
            .collect(),
        ws.seed.wrapping_add(g as u64),
    );
    // Deployment shares the interned profiles — no kernel-table copies.
    let apps: Vec<DeployedApp> = tenants
        .iter()
        .map(|&t| {
            DeployedApp::new(
                SharedProfile::clone(&requests[t].profile),
                ws.tenants[t].quota,
                None,
            )
        })
        .collect();
    let mut driver = BlessDriver::new(apps, params.clone());
    if let Some(modes) = &opts.initial_modes {
        for (local, &t) in tenants.iter().enumerate() {
            driver.restore_share_mode(local, modes[t], 0);
        }
    }
    // PR 6 follow-on: when the runtime's own lane hints certify the
    // tenancy as fully sharded, promote the hint into an actual lane
    // split — each tenant simulates on its own isolated engine. Trace
    // capture stays monolithic (lane streams have per-lane queue/seq
    // namespaces), as do closed-loop tenants (their client state lives
    // in one shared notice handler).
    let open_loop = local_ws
        .tenants
        .iter()
        .all(|t| !matches!(t.pattern, ArrivalPattern::ClosedLoop { .. }));
    if opts.lane_sharding && !opts.capture_trace && open_loop {
        let hints = driver.lane_hints(spec.num_sms);
        if hints.is_fully_sharded() && hints.num_lanes() > 1 {
            let modes: Vec<ShareMode> = (0..tenants.len()).map(|a| driver.share_mode(a)).collect();
            return run_one_gpu_sharded(
                g, tenants, &local_ws, requests, &modes, spec, params, horizon,
            );
        }
    }
    let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
    let sink = if opts.capture_trace {
        let s = BufferSink::new();
        gpu.set_trace_sink(Box::new(s.clone()));
        Some(s)
    } else {
        None
    };
    let arrivals: Vec<RequestArrival> = local_ws.initial_arrivals();
    let mut sim =
        Simulation::new(gpu, driver, arrivals).with_notice_handler(local_ws.notice_handler());
    let outcome = sim.run(horizon);
    let makespan = sim.gpu.now().as_secs_f64();
    let utilization = if makespan > 0.0 {
        sim.gpu.busy_sm_seconds() / (spec.num_sms as f64 * makespan)
    } else {
        0.0
    };
    GpuRun {
        gpu: g,
        tenants,
        log: sim.driver.log,
        outcome,
        utilization,
        lanes: 1,
        trace: sink.map(|s| s.take()).unwrap_or_default(),
    }
}

/// Simulates a fully-sharded GPU as per-tenant lanes: every tenant runs
/// on its own engine (its hard SM cap makes the partition structurally
/// isolated — see DESIGN.md §5h), and the per-lane logs merge back into
/// local tenant order. Arrivals come from the *same* per-app forks the
/// monolithic path draws, so the schedules coincide; only the
/// cross-partition memory-interference term is dropped.
#[allow(clippy::too_many_arguments)]
fn run_one_gpu_sharded(
    g: usize,
    tenants: Vec<usize>,
    local_ws: &WorkloadSet,
    requests: &[PlacementRequest],
    modes: &[ShareMode],
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
) -> GpuRun {
    // Canonical arrival schedule (per-app forks of the GPU seed),
    // partitioned by tenant and renumbered to each lane's app 0.
    let mut per_lane: Vec<Vec<RequestArrival>> = vec![Vec::new(); tenants.len()];
    for a in local_ws.initial_arrivals() {
        per_lane[a.app].push(RequestArrival { app: 0, ..a });
    }

    let mut log = RequestLog::new(tenants.len());
    let mut outcome = RunOutcome::Completed;
    let mut busy = 0.0;
    let mut makespan = 0.0f64;
    for (lane, arrivals) in per_lane.into_iter().enumerate() {
        let t = tenants[lane];
        let app = DeployedApp::new(
            SharedProfile::clone(&requests[t].profile),
            requests[t].quota,
            None,
        );
        let mut driver = BlessDriver::new(vec![app], params.clone());
        driver.restore_share_mode(0, modes[lane], 0);
        let gpu = Gpu::new(spec.clone(), HostCosts::paper());
        let mut sim = Simulation::new(gpu, driver, arrivals);
        let lane_outcome = sim.run(horizon);
        if outcome == RunOutcome::Completed {
            outcome = lane_outcome;
        }
        busy += sim.gpu.busy_sm_seconds();
        makespan = makespan.max(sim.gpu.now().as_secs_f64());
        for (req, r) in sim.driver.log.records(0).iter().enumerate() {
            log.arrived(lane, req, r.arrival);
            if let Some(c) = r.completion {
                log.completed(lane, req, c);
            }
        }
    }
    let lanes = tenants.len();
    let utilization = if makespan > 0.0 {
        busy / (spec.num_sms as f64 * makespan)
    } else {
        0.0
    };
    GpuRun {
        gpu: g,
        tenants,
        log,
        outcome,
        utilization,
        lanes,
        trace: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use profiler::ProfiledApp;
    use sim_core::SimDuration;
    use workloads::ArrivalPattern;

    fn four_tenant_fixture() -> (GpuSpec, WorkloadSet, Vec<SharedProfile>) {
        let spec = GpuSpec::a100();
        let kinds = [
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            ModelKind::ResNet101,
            ModelKind::Bert,
        ];
        let tenants: Vec<TenantSpec> = kinds
            .iter()
            .map(|&k| {
                TenantSpec::new(
                    AppModel::build(k, Phase::Inference),
                    0.5,
                    ArrivalPattern::ClosedLoop {
                        think: SimDuration::from_millis(10),
                        count: 4,
                    },
                )
            })
            .collect();
        let profiles: Vec<SharedProfile> = kinds
            .iter()
            .map(|&k| ProfiledApp::profile_shared(&AppModel::build(k, Phase::Inference), &spec))
            .collect();
        // Quotas sum to 2.0: WorkloadSet normally rejects oversubscription,
        // so build per-GPU sets through the cluster API instead.
        (spec, WorkloadSet { tenants, seed: 5 }, profiles)
    }

    #[test]
    fn four_tenants_on_two_gpus_all_complete() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let run = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
        )
        .unwrap();
        assert_eq!(run.placement.gpus_used, 2);
        assert!(run.all_completed());
        for t in 0..4 {
            let ms = run.tenant_mean_ms(t).expect("tenant served");
            assert!(ms.is_finite() && ms > 0.0);
        }
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let horizon = SimTime::from_secs(60);
        let params = BlessParams::default();
        // Force a real worker pool: on a single-core host the default
        // would degrade to the sequential loop and compare it to itself.
        let opts = ClusterOptions {
            workers: Some(3),
            ..ClusterOptions::default()
        };
        let par =
            run_cluster_opts(&ws, profiles.clone(), 4, &spec, &params, horizon, &opts).unwrap();
        let seq = run_cluster_seq(&ws, profiles, 4, &spec, &params, horizon).unwrap();
        assert_eq!(par.placement, seq.placement);
        assert_eq!(par.gpus.len(), seq.gpus.len());
        for (p, s) in par.gpus.iter().zip(&seq.gpus) {
            assert_eq!(p.gpu, s.gpu);
            assert_eq!(p.tenants, s.tenants);
            assert_eq!(p.outcome, s.outcome);
            assert_eq!(p.utilization.to_bits(), s.utilization.to_bits());
            for app in 0..p.tenants.len() {
                let pr: Vec<_> = p
                    .log
                    .records(app)
                    .iter()
                    .map(|r| (r.arrival, r.completion))
                    .collect();
                let sr: Vec<_> = s
                    .log
                    .records(app)
                    .iter()
                    .map(|r| (r.arrival, r.completion))
                    .collect();
                assert_eq!(pr, sr, "gpu {} app {app}", p.gpu);
            }
        }
    }

    #[test]
    fn trace_capture_covers_every_gpu() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let run = run_cluster_opts(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
            &ClusterOptions {
                capture_trace: true,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        for g in &run.gpus {
            assert!(!g.trace.is_empty(), "gpu {} captured no events", g.gpu);
        }
        // Capture is purely observational: the uncaptured run matches.
        let (spec, ws, profiles) = four_tenant_fixture();
        let plain = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
        )
        .unwrap();
        for (a, b) in run.gpus.iter().zip(&plain.gpus) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        }
    }

    #[test]
    fn fleet_errors_propagate() {
        let spec = GpuSpec::a100();
        let tenants: Vec<TenantSpec> = (0..2)
            .map(|_| {
                TenantSpec::new(
                    AppModel::build(ModelKind::ResNet50, Phase::Inference),
                    0.9,
                    ArrivalPattern::Simultaneous {
                        count: 1,
                        at: SimTime::ZERO,
                    },
                )
            })
            .collect();
        let profiles: Vec<SharedProfile> = (0..2)
            .map(|_| {
                ProfiledApp::profile_shared(
                    &AppModel::build(ModelKind::ResNet50, Phase::Inference),
                    &spec,
                )
            })
            .collect();
        let ws = WorkloadSet { tenants, seed: 1 };
        let err = run_cluster(
            &ws,
            profiles,
            1,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert!(matches!(err, PlacementError::FleetTooSmall { .. }));
    }

    #[test]
    fn empty_workload_is_a_typed_error() {
        let spec = GpuSpec::a100();
        let ws = WorkloadSet {
            tenants: vec![],
            seed: 1,
        };
        let err = run_cluster::<SharedProfile>(
            &ws,
            vec![],
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert_eq!(err, PlacementError::EmptyWorkload);
    }

    #[test]
    fn profile_count_mismatch_is_a_typed_error() {
        let (spec, ws, mut profiles) = four_tenant_fixture();
        profiles.pop();
        let err = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert_eq!(
            err,
            PlacementError::ProfileCountMismatch {
                profiles: 3,
                tenants: 4
            }
        );
    }

    fn strict_pair_fixture() -> (GpuSpec, WorkloadSet, Vec<SharedProfile>) {
        let spec = GpuSpec::a100();
        let kinds = [ModelKind::Vgg11, ModelKind::ResNet50];
        let tenants: Vec<TenantSpec> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                TenantSpec::new(
                    AppModel::build(k, Phase::Inference),
                    0.45,
                    ArrivalPattern::Periodic {
                        period: SimDuration::from_millis(5),
                        count: 6,
                        offset: SimDuration::from_millis(i as u64),
                    },
                )
            })
            .collect();
        let profiles = kinds
            .iter()
            .map(|&k| ProfiledApp::profile_shared(&AppModel::build(k, Phase::Inference), &spec))
            .collect();
        (spec, WorkloadSet { tenants, seed: 9 }, profiles)
    }

    #[test]
    fn fully_sharded_tenancy_runs_on_per_tenant_lanes() {
        let (spec, ws, profiles) = strict_pair_fixture();
        let horizon = SimTime::from_secs(60);
        let params = BlessParams::default();
        let opts = ClusterOptions {
            initial_modes: Some(vec![ShareMode::StrictSpatial; 2]),
            ..ClusterOptions::default()
        };
        let run =
            run_cluster_opts(&ws, profiles.clone(), 1, &spec, &params, horizon, &opts).unwrap();
        assert_eq!(run.gpus.len(), 1);
        let g = &run.gpus[0];
        assert_eq!(g.lanes, 2, "strict-spatial pair must shard onto 2 lanes");
        assert_eq!(g.outcome, RunOutcome::Completed);
        assert!(g.utilization > 0.0);
        for app in 0..2 {
            assert_eq!(g.log.records(app).len(), 6);
            assert_eq!(g.log.completed_count(app), 6, "app {app} lost requests");
        }

        // The sharded run is deterministic…
        let again =
            run_cluster_opts(&ws, profiles.clone(), 1, &spec, &params, horizon, &opts).unwrap();
        for app in 0..2 {
            let a: Vec<_> = run.gpus[0]
                .log
                .records(app)
                .iter()
                .map(|r| (r.arrival, r.completion))
                .collect();
            let b: Vec<_> = again.gpus[0]
                .log
                .records(app)
                .iter()
                .map(|r| (r.arrival, r.completion))
                .collect();
            assert_eq!(a, b, "app {app}");
        }

        // …and draws the exact arrival schedule the monolithic engine
        // uses (same per-app forks), so only completion physics differ.
        let mono = run_cluster_opts(
            &ws,
            profiles,
            1,
            &spec,
            &params,
            horizon,
            &ClusterOptions {
                lane_sharding: false,
                initial_modes: Some(vec![ShareMode::StrictSpatial; 2]),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        assert_eq!(mono.gpus[0].lanes, 1);
        for app in 0..2 {
            let sharded: Vec<_> = run.gpus[0]
                .log
                .records(app)
                .iter()
                .map(|r| r.arrival)
                .collect();
            let monolithic: Vec<_> = mono.gpus[0]
                .log
                .records(app)
                .iter()
                .map(|r| r.arrival)
                .collect();
            assert_eq!(sharded, monolithic, "app {app} arrival schedules diverge");
            assert_eq!(mono.gpus[0].log.completed_count(app), 6);
        }
    }

    #[test]
    fn pool_reachable_tenancies_stay_monolithic() {
        // Without mode pinning every tenant deploys semi-spatial — the
        // hint never certifies the split, even with sharding enabled.
        let (spec, ws, profiles) = strict_pair_fixture();
        let run = run_cluster(
            &ws,
            profiles,
            1,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
        )
        .unwrap();
        assert_eq!(run.gpus[0].lanes, 1);
        assert!(run.all_completed());
    }

    #[test]
    fn streaming_summary_matches_materialized_run_at_any_worker_count() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let horizon = SimTime::from_secs(60);
        let params = BlessParams::default();
        // Ground truth: the materialized sequential run, folded by hand.
        let seq = run_cluster_seq(&ws, profiles.clone(), 4, &spec, &params, horizon).unwrap();
        let mut h = Fnv::new();
        for g in &seq.gpus {
            h.write_u64(g.log.digest());
        }
        let want_digest = h.finish();

        let mut summaries = Vec::new();
        for workers in [1usize, 2, 4] {
            let opts = ClusterOptions {
                workers: Some(workers),
                ..ClusterOptions::default()
            };
            let s = run_cluster_stream(&ws, profiles.clone(), 4, &spec, &params, horizon, &opts)
                .unwrap();
            assert_eq!(s.digest, want_digest, "workers={workers}");
            assert_eq!(s.placement, seq.placement);
            assert!(s.all_completed());
            summaries.push(s);
        }
        // The whole summary — not just the digest — is byte-stable.
        assert_eq!(summaries[0], summaries[1]);
        assert_eq!(summaries[0], summaries[2]);
        // And the commutative counters agree with the materialized logs.
        let arrived: u64 = seq
            .gpus
            .iter()
            .map(|g| {
                (0..g.tenants.len())
                    .map(|a| g.log.records(a).len() as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(summaries[0].arrived_requests, arrived);
        assert_eq!(summaries[0].completed_requests, arrived);
        assert!(summaries[0].mean_latency_ms().is_some());
    }

    #[test]
    fn contention_aware_fleet_runs_end_to_end() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let opts = ClusterOptions {
            placement_policy: PlacementPolicy::contention_aware(),
            ..ClusterOptions::default()
        };
        let run = run_cluster_opts(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
            &opts,
        )
        .unwrap();
        assert!(run.all_completed());
        // Every tenant still lands somewhere valid.
        for t in 0..4 {
            assert!(run.tenant_mean_ms(t).is_some());
        }
    }

    #[test]
    fn oom_tenant_is_a_typed_error() {
        // BERT cannot fit a 512 MiB device: placement rejects it with the
        // admission reason instead of panicking mid-deployment.
        let spec = GpuSpec {
            memory_mib: 512,
            ..GpuSpec::a100()
        };
        let model = AppModel::build(ModelKind::Bert, Phase::Inference);
        let ws = WorkloadSet {
            tenants: vec![TenantSpec::new(
                model.clone(),
                0.5,
                ArrivalPattern::Simultaneous {
                    count: 1,
                    at: SimTime::ZERO,
                },
            )],
            seed: 1,
        };
        let profiles = vec![ProfiledApp::profile_shared(&model, &spec)];
        let err = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PlacementError::Unplaceable { request: 0, .. }
        ));
    }
}
