//! Running a placed multi-GPU deployment: one replicated BLESS runtime
//! per GPU, each driving its own simulated device.
//!
//! GPUs are mutually independent once placed — each gets its own
//! [`Gpu`], [`BlessDriver`], arrival stream, and (optionally) trace sink —
//! so the fleet is simulated on a pool of worker threads
//! ([`run_cluster`]), with results merged in placement order. The merged
//! [`ClusterRun`] is byte-identical to the sequential twin
//! ([`run_cluster_seq`]), which exists for the differential determinism
//! test and for single-core hosts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use bless::{BlessDriver, BlessParams, DeployedApp};
use gpu_sim::{BufferSink, Gpu, GpuSpec, HostCosts, RequestArrival, RunOutcome, Simulation};
use metrics::RequestLog;
use profiler::SharedProfile;
use sim_core::trace::TraceEvent;
use sim_core::SimTime;
use workloads::{TenantSpec, WorkloadSet};

use crate::placement::{place, Placement, PlacementError, PlacementRequest};

/// Result of one GPU's run within the cluster.
#[derive(Debug)]
pub struct GpuRun {
    /// This GPU's index within the placement.
    pub gpu: usize,
    /// Request indices (into the cluster's tenant list) served here.
    pub tenants: Vec<usize>,
    /// The GPU-local request log (indexed by local tenant position).
    pub log: RequestLog,
    /// Simulation outcome.
    pub outcome: RunOutcome,
    /// GPU utilization over its makespan.
    pub utilization: f64,
    /// This GPU's structured trace stream (empty unless
    /// [`ClusterOptions::capture_trace`] was set). Events are GPU-local:
    /// app ids index into `tenants`.
    pub trace: Vec<TraceEvent>,
}

/// Result of a whole cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// The placement used.
    pub placement: Placement,
    /// Per-GPU results, in placement order.
    pub gpus: Vec<GpuRun>,
}

impl ClusterRun {
    /// Mean latency (ms) of one cluster-level tenant.
    pub fn tenant_mean_ms(&self, tenant: usize) -> Option<f64> {
        let gpu = *self.placement.assignments.get(tenant)?;
        let local = self.gpus[gpu].tenants.iter().position(|&t| t == tenant)?;
        self.gpus[gpu]
            .log
            .stats(local)
            .mean
            .map(|d| d.as_millis_f64())
    }

    /// True when every GPU completed all its requests.
    pub fn all_completed(&self) -> bool {
        self.gpus.iter().all(|g| g.outcome == RunOutcome::Completed)
    }
}

/// Knobs for [`run_cluster_opts`].
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Simulate GPUs on a worker pool (`false` forces the sequential
    /// loop). Output is byte-identical either way.
    pub parallel: bool,
    /// Record each GPU's structured trace stream into
    /// [`GpuRun::trace`].
    pub capture_trace: bool,
    /// Worker-pool size; `None` honours `std::thread::available_parallelism`.
    pub workers: Option<usize>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            parallel: true,
            capture_trace: false,
            workers: None,
        }
    }
}

/// Places the workload's tenants onto a fleet and serves each GPU with a
/// replicated BLESS runtime, simulating GPUs in parallel.
///
/// `profiles` must align with `ws.tenants` (one profile per tenant, on the
/// fleet's GPU spec). Pass [`SharedProfile`] handles to avoid deep-copying
/// kernel tables; plain [`profiler::ProfiledApp`] values are accepted and
/// interned on entry.
pub fn run_cluster<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
) -> Result<ClusterRun, PlacementError> {
    run_cluster_opts(
        ws,
        profiles,
        fleet_size,
        spec,
        params,
        horizon,
        &ClusterOptions::default(),
    )
}

/// [`run_cluster`] forced onto the sequential single-thread path. Exists
/// as the differential-determinism twin: the parallel runner must produce
/// byte-identical output to this.
pub fn run_cluster_seq<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
) -> Result<ClusterRun, PlacementError> {
    run_cluster_opts(
        ws,
        profiles,
        fleet_size,
        spec,
        params,
        horizon,
        &ClusterOptions {
            parallel: false,
            ..ClusterOptions::default()
        },
    )
}

/// [`run_cluster`] with explicit [`ClusterOptions`].
pub fn run_cluster_opts<P: Into<SharedProfile>>(
    ws: &WorkloadSet,
    profiles: Vec<P>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
) -> Result<ClusterRun, PlacementError> {
    if ws.tenants.is_empty() {
        return Err(PlacementError::EmptyWorkload);
    }
    if ws.len() != profiles.len() {
        return Err(PlacementError::ProfileCountMismatch {
            profiles: profiles.len(),
            tenants: ws.len(),
        });
    }
    let requests: Vec<PlacementRequest> = profiles
        .into_iter()
        .zip(&ws.tenants)
        .map(|(p, t)| PlacementRequest {
            profile: p.into(),
            quota: t.quota,
        })
        .collect();
    let placement = place(
        &requests,
        fleet_size,
        spec.memory_mib,
        &profiler::AdmissionPolicy::default(),
    )?;

    let workers = if opts.parallel {
        opts.workers
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1)
            .clamp(1, placement.gpus_used.max(1))
    } else {
        1
    };

    let gpus = if workers <= 1 || placement.gpus_used <= 1 {
        (0..placement.gpus_used)
            .map(|g| run_one_gpu(g, &placement, ws, &requests, spec, params, horizon, opts))
            .collect()
    } else {
        run_gpus_parallel(
            &placement, ws, &requests, spec, params, horizon, opts, workers,
        )
    };

    Ok(ClusterRun { placement, gpus })
}

/// Simulates the fleet on `workers` scoped threads pulling GPU indices
/// from a shared counter, then merges results back into placement order.
/// Each GPU's simulation is self-contained (its own device, driver,
/// arrival stream, and sink), so the merge is a pure reordering — the
/// output is byte-identical to the sequential loop.
#[allow(clippy::too_many_arguments)]
fn run_gpus_parallel(
    placement: &Placement,
    ws: &WorkloadSet,
    requests: &[PlacementRequest],
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
    workers: usize,
) -> Vec<GpuRun> {
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<GpuRun>> = Mutex::new(Vec::with_capacity(placement.gpus_used));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let g = next.fetch_add(1, Ordering::Relaxed);
                if g >= placement.gpus_used {
                    break;
                }
                let run = run_one_gpu(g, placement, ws, requests, spec, params, horizon, opts);
                done.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(run);
            });
        }
    });
    // A panicking worker propagates out of the scope above, so every GPU
    // has exactly one result here; placement order restores determinism.
    let mut gpus = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    gpus.sort_by_key(|r| r.gpu);
    debug_assert_eq!(gpus.len(), placement.gpus_used);
    gpus
}

/// Simulates one GPU's tenants to completion — the unit of work both the
/// sequential loop and the worker pool execute.
#[allow(clippy::too_many_arguments)]
fn run_one_gpu(
    g: usize,
    placement: &Placement,
    ws: &WorkloadSet,
    requests: &[PlacementRequest],
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
    opts: &ClusterOptions,
) -> GpuRun {
    let tenants = placement.tenants_of(g);
    // Build a GPU-local workload with remapped app ids.
    let local_ws = WorkloadSet::new(
        tenants
            .iter()
            .map(|&t| {
                TenantSpec::new(
                    ws.tenants[t].model.clone(),
                    ws.tenants[t].quota,
                    ws.tenants[t].pattern.clone(),
                )
            })
            .collect(),
        ws.seed.wrapping_add(g as u64),
    );
    // Deployment shares the interned profiles — no kernel-table copies.
    let apps: Vec<DeployedApp> = tenants
        .iter()
        .map(|&t| {
            DeployedApp::new(
                SharedProfile::clone(&requests[t].profile),
                ws.tenants[t].quota,
                None,
            )
        })
        .collect();
    let driver = BlessDriver::new(apps, params.clone());
    let mut gpu = Gpu::new(spec.clone(), HostCosts::paper());
    let sink = if opts.capture_trace {
        let s = BufferSink::new();
        gpu.set_trace_sink(Box::new(s.clone()));
        Some(s)
    } else {
        None
    };
    let arrivals: Vec<RequestArrival> = local_ws.initial_arrivals();
    let mut sim =
        Simulation::new(gpu, driver, arrivals).with_notice_handler(local_ws.notice_handler());
    let outcome = sim.run(horizon);
    let makespan = sim.gpu.now().as_secs_f64();
    let utilization = if makespan > 0.0 {
        sim.gpu.busy_sm_seconds() / (spec.num_sms as f64 * makespan)
    } else {
        0.0
    };
    GpuRun {
        gpu: g,
        tenants,
        log: sim.driver.log,
        outcome,
        utilization,
        trace: sink.map(|s| s.take()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use profiler::ProfiledApp;
    use sim_core::SimDuration;
    use workloads::ArrivalPattern;

    fn four_tenant_fixture() -> (GpuSpec, WorkloadSet, Vec<SharedProfile>) {
        let spec = GpuSpec::a100();
        let kinds = [
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            ModelKind::ResNet101,
            ModelKind::Bert,
        ];
        let tenants: Vec<TenantSpec> = kinds
            .iter()
            .map(|&k| {
                TenantSpec::new(
                    AppModel::build(k, Phase::Inference),
                    0.5,
                    ArrivalPattern::ClosedLoop {
                        think: SimDuration::from_millis(10),
                        count: 4,
                    },
                )
            })
            .collect();
        let profiles: Vec<SharedProfile> = kinds
            .iter()
            .map(|&k| ProfiledApp::profile_shared(&AppModel::build(k, Phase::Inference), &spec))
            .collect();
        // Quotas sum to 2.0: WorkloadSet normally rejects oversubscription,
        // so build per-GPU sets through the cluster API instead.
        (spec, WorkloadSet { tenants, seed: 5 }, profiles)
    }

    #[test]
    fn four_tenants_on_two_gpus_all_complete() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let run = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
        )
        .unwrap();
        assert_eq!(run.placement.gpus_used, 2);
        assert!(run.all_completed());
        for t in 0..4 {
            let ms = run.tenant_mean_ms(t).expect("tenant served");
            assert!(ms.is_finite() && ms > 0.0);
        }
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let horizon = SimTime::from_secs(60);
        let params = BlessParams::default();
        // Force a real worker pool: on a single-core host the default
        // would degrade to the sequential loop and compare it to itself.
        let opts = ClusterOptions {
            workers: Some(3),
            ..ClusterOptions::default()
        };
        let par =
            run_cluster_opts(&ws, profiles.clone(), 4, &spec, &params, horizon, &opts).unwrap();
        let seq = run_cluster_seq(&ws, profiles, 4, &spec, &params, horizon).unwrap();
        assert_eq!(par.placement, seq.placement);
        assert_eq!(par.gpus.len(), seq.gpus.len());
        for (p, s) in par.gpus.iter().zip(&seq.gpus) {
            assert_eq!(p.gpu, s.gpu);
            assert_eq!(p.tenants, s.tenants);
            assert_eq!(p.outcome, s.outcome);
            assert_eq!(p.utilization.to_bits(), s.utilization.to_bits());
            for app in 0..p.tenants.len() {
                let pr: Vec<_> = p
                    .log
                    .records(app)
                    .iter()
                    .map(|r| (r.arrival, r.completion))
                    .collect();
                let sr: Vec<_> = s
                    .log
                    .records(app)
                    .iter()
                    .map(|r| (r.arrival, r.completion))
                    .collect();
                assert_eq!(pr, sr, "gpu {} app {app}", p.gpu);
            }
        }
    }

    #[test]
    fn trace_capture_covers_every_gpu() {
        let (spec, ws, profiles) = four_tenant_fixture();
        let run = run_cluster_opts(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
            &ClusterOptions {
                capture_trace: true,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        for g in &run.gpus {
            assert!(!g.trace.is_empty(), "gpu {} captured no events", g.gpu);
        }
        // Capture is purely observational: the uncaptured run matches.
        let (spec, ws, profiles) = four_tenant_fixture();
        let plain = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
        )
        .unwrap();
        for (a, b) in run.gpus.iter().zip(&plain.gpus) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        }
    }

    #[test]
    fn fleet_errors_propagate() {
        let spec = GpuSpec::a100();
        let tenants: Vec<TenantSpec> = (0..2)
            .map(|_| {
                TenantSpec::new(
                    AppModel::build(ModelKind::ResNet50, Phase::Inference),
                    0.9,
                    ArrivalPattern::Simultaneous {
                        count: 1,
                        at: SimTime::ZERO,
                    },
                )
            })
            .collect();
        let profiles: Vec<SharedProfile> = (0..2)
            .map(|_| {
                ProfiledApp::profile_shared(
                    &AppModel::build(ModelKind::ResNet50, Phase::Inference),
                    &spec,
                )
            })
            .collect();
        let ws = WorkloadSet { tenants, seed: 1 };
        let err = run_cluster(
            &ws,
            profiles,
            1,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert!(matches!(err, PlacementError::FleetTooSmall { .. }));
    }

    #[test]
    fn empty_workload_is_a_typed_error() {
        let spec = GpuSpec::a100();
        let ws = WorkloadSet {
            tenants: vec![],
            seed: 1,
        };
        let err = run_cluster::<SharedProfile>(
            &ws,
            vec![],
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert_eq!(err, PlacementError::EmptyWorkload);
    }

    #[test]
    fn profile_count_mismatch_is_a_typed_error() {
        let (spec, ws, mut profiles) = four_tenant_fixture();
        profiles.pop();
        let err = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert_eq!(
            err,
            PlacementError::ProfileCountMismatch {
                profiles: 3,
                tenants: 4
            }
        );
    }

    #[test]
    fn oom_tenant_is_a_typed_error() {
        // BERT cannot fit a 512 MiB device: placement rejects it with the
        // admission reason instead of panicking mid-deployment.
        let spec = GpuSpec {
            memory_mib: 512,
            ..GpuSpec::a100()
        };
        let model = AppModel::build(ModelKind::Bert, Phase::Inference);
        let ws = WorkloadSet {
            tenants: vec![TenantSpec::new(
                model.clone(),
                0.5,
                ArrivalPattern::Simultaneous {
                    count: 1,
                    at: SimTime::ZERO,
                },
            )],
            seed: 1,
        };
        let profiles = vec![ProfiledApp::profile_shared(&model, &spec)];
        let err = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PlacementError::Unplaceable { request: 0, .. }
        ));
    }
}
