//! Running a placed multi-GPU deployment: one replicated BLESS runtime
//! per GPU, each driving its own simulated device.

use bless::{BlessDriver, BlessParams, DeployedApp};
use gpu_sim::{Gpu, GpuSpec, HostCosts, RequestArrival, RunOutcome, Simulation};
use metrics::RequestLog;
use sim_core::SimTime;
use workloads::{TenantSpec, WorkloadSet};

use crate::placement::{place, Placement, PlacementError, PlacementRequest};

/// Result of one GPU's run within the cluster.
#[derive(Debug)]
pub struct GpuRun {
    /// Request indices (into the cluster's tenant list) served here.
    pub tenants: Vec<usize>,
    /// The GPU-local request log (indexed by local tenant position).
    pub log: RequestLog,
    /// Simulation outcome.
    pub outcome: RunOutcome,
    /// GPU utilization over its makespan.
    pub utilization: f64,
}

/// Result of a whole cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// The placement used.
    pub placement: Placement,
    /// Per-GPU results.
    pub gpus: Vec<GpuRun>,
}

impl ClusterRun {
    /// Mean latency (ms) of one cluster-level tenant.
    pub fn tenant_mean_ms(&self, tenant: usize) -> Option<f64> {
        let gpu = self.placement.assignments[tenant];
        let local = self.gpus[gpu].tenants.iter().position(|&t| t == tenant)?;
        self.gpus[gpu]
            .log
            .stats(local)
            .mean
            .map(|d| d.as_millis_f64())
    }

    /// True when every GPU completed all its requests.
    pub fn all_completed(&self) -> bool {
        self.gpus.iter().all(|g| g.outcome == RunOutcome::Completed)
    }
}

/// Places the workload's tenants onto a fleet and serves each GPU with a
/// replicated BLESS runtime.
///
/// `profiles` must align with `ws.tenants` (one profile per tenant, on the
/// fleet's GPU spec).
pub fn run_cluster(
    ws: &WorkloadSet,
    profiles: Vec<profiler::ProfiledApp>,
    fleet_size: usize,
    spec: &GpuSpec,
    params: &BlessParams,
    horizon: SimTime,
) -> Result<ClusterRun, PlacementError> {
    assert_eq!(ws.len(), profiles.len(), "one profile per tenant");
    let requests: Vec<PlacementRequest> = profiles
        .iter()
        .zip(&ws.tenants)
        .map(|(p, t)| PlacementRequest {
            profile: p.clone(),
            quota: t.quota,
        })
        .collect();
    let placement = place(
        &requests,
        fleet_size,
        spec.memory_mib,
        &profiler::AdmissionPolicy::default(),
    )?;

    let mut gpus = Vec::new();
    for g in 0..placement.gpus_used {
        let tenants = placement.tenants_of(g);
        // Build a GPU-local workload with remapped app ids.
        let local_ws = WorkloadSet::new(
            tenants
                .iter()
                .map(|&t| {
                    TenantSpec::new(
                        ws.tenants[t].model.clone(),
                        ws.tenants[t].quota,
                        ws.tenants[t].pattern.clone(),
                    )
                })
                .collect(),
            ws.seed.wrapping_add(g as u64),
        );
        let apps: Vec<DeployedApp> = tenants
            .iter()
            .map(|&t| DeployedApp::new(requests[t].profile.clone(), ws.tenants[t].quota, None))
            .collect();
        let driver = BlessDriver::new(apps, params.clone());
        let gpu = Gpu::new(spec.clone(), HostCosts::paper());
        let arrivals: Vec<RequestArrival> = local_ws.initial_arrivals();
        let mut sim =
            Simulation::new(gpu, driver, arrivals).with_notice_handler(local_ws.notice_handler());
        let outcome = sim.run(horizon);
        let makespan = sim.gpu.now().as_secs_f64();
        let utilization = if makespan > 0.0 {
            sim.gpu.busy_sm_seconds() / (spec.num_sms as f64 * makespan)
        } else {
            0.0
        };
        gpus.push(GpuRun {
            tenants,
            log: sim.driver.log,
            outcome,
            utilization,
        });
    }
    Ok(ClusterRun { placement, gpus })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use profiler::ProfiledApp;
    use sim_core::SimDuration;
    use workloads::ArrivalPattern;

    #[test]
    fn four_tenants_on_two_gpus_all_complete() {
        let spec = GpuSpec::a100();
        let kinds = [
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            ModelKind::ResNet101,
            ModelKind::Bert,
        ];
        let tenants: Vec<TenantSpec> = kinds
            .iter()
            .map(|&k| {
                TenantSpec::new(
                    AppModel::build(k, Phase::Inference),
                    0.5,
                    ArrivalPattern::ClosedLoop {
                        think: SimDuration::from_millis(10),
                        count: 4,
                    },
                )
            })
            .collect();
        // Quotas sum to 2.0: WorkloadSet normally rejects oversubscription,
        // so build per-GPU sets through the cluster API instead.
        let profiles: Vec<ProfiledApp> = kinds
            .iter()
            .map(|&k| ProfiledApp::profile(&AppModel::build(k, Phase::Inference), &spec))
            .collect();
        // Bypass the single-GPU quota check by constructing tenants in two
        // halves and merging manually.
        let ws = WorkloadSet { tenants, seed: 5 };
        let run = run_cluster(
            &ws,
            profiles,
            4,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(60),
        )
        .unwrap();
        assert_eq!(run.placement.gpus_used, 2);
        assert!(run.all_completed());
        for t in 0..4 {
            let ms = run.tenant_mean_ms(t).expect("tenant served");
            assert!(ms.is_finite() && ms > 0.0);
        }
    }

    #[test]
    fn fleet_errors_propagate() {
        let spec = GpuSpec::a100();
        let tenants: Vec<TenantSpec> = (0..2)
            .map(|_| {
                TenantSpec::new(
                    AppModel::build(ModelKind::ResNet50, Phase::Inference),
                    0.9,
                    ArrivalPattern::Simultaneous {
                        count: 1,
                        at: SimTime::ZERO,
                    },
                )
            })
            .collect();
        let profiles: Vec<ProfiledApp> = (0..2)
            .map(|_| {
                ProfiledApp::profile(
                    &AppModel::build(ModelKind::ResNet50, Phase::Inference),
                    &spec,
                )
            })
            .collect();
        let ws = WorkloadSet { tenants, seed: 1 };
        let err = run_cluster(
            &ws,
            profiles,
            1,
            &spec,
            &BlessParams::default(),
            SimTime::from_secs(10),
        )
        .unwrap_err();
        assert!(matches!(err, PlacementError::FleetTooSmall { .. }));
    }
}
