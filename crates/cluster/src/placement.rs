//! The central placement controller.
//!
//! Two policies are offered behind [`PlacementPolicy`]:
//!
//! * [`PlacementPolicy::FirstFit`] — the classic first-fit-decreasing
//!   packing, now served by a free-capacity index (`CapacityIndex`, a
//!   segment tree of per-GPU provisioned quota) so each candidate lookup
//!   is `O(log n)` instead of a linear scan over the opened fleet. The
//!   index answers exactly the question the old scan asked — the
//!   lowest-numbered GPU whose quota headroom admits the request — so
//!   placements are byte-identical to [`place_linear`], the retained
//!   linear twin the differential property test compares against.
//! * [`PlacementPolicy::ContentionAware`] — the same quota/admission
//!   feasibility rules, but among the first `top_k` admissible GPUs the
//!   controller picks the one minimizing the *predicted bottleneck
//!   slowdown* of the resulting tenancy: each tenant's work-weighted
//!   [`ChannelDemand`] aggregate ([`bless::aggregate_demand`]) is summed
//!   into per-GPU channel traffic, and [`ChannelParams::slowdown`] prices
//!   the co-location (Zahaf et al. / Elvinger et al., PAPERS.md —
//!   bottleneck-channel overlap, not raw co-residency, is what placement
//!   should minimize).

use bless::aggregate_demand;
use gpu_sim::{ChannelDemand, ChannelParams, NUM_CHANNELS};
use profiler::{admit, AdmissionError, AdmissionPolicy, ProfiledApp, SharedProfile};

/// One application asking to be placed.
///
/// The profile is held through a [`SharedProfile`] handle: the controller,
/// the per-GPU deployments, and the caller's own copy all reference one
/// interned kernel table instead of deep-copying it at every layer.
#[derive(Clone, Debug)]
pub struct PlacementRequest {
    /// Offline profile (provides memory needs and kernel statistics).
    pub profile: SharedProfile,
    /// Requested GPU quota in `(0, 1]`.
    pub quota: f64,
}

/// A computed placement: `assignments[i]` is the GPU index of request `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// GPU index per request, aligned with the input order.
    pub assignments: Vec<usize>,
    /// Number of GPUs actually used.
    pub gpus_used: usize,
}

impl Placement {
    /// The request indices placed on `gpu`.
    pub fn tenants_of(&self, gpu: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g == gpu)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Why the fleet could not host the request set.
#[derive(Clone, Debug, PartialEq)]
pub enum PlacementError {
    /// A single request cannot fit on any empty GPU.
    Unplaceable {
        /// Index of the offending request.
        request: usize,
        /// The admission failure on an empty GPU.
        reason: AdmissionError,
    },
    /// More GPUs are needed than the fleet has.
    FleetTooSmall {
        /// GPUs required by the computed packing.
        needed: usize,
        /// GPUs available.
        available: usize,
    },
    /// A request's quota is outside `(0, 1]` (so it cannot be provisioned
    /// on any single GPU, not even an empty one).
    InvalidQuota {
        /// Index of the offending request.
        request: usize,
        /// The requested quota.
        quota: f64,
    },
    /// The workload has no tenants — there is nothing to place.
    EmptyWorkload,
    /// The profile list does not align with the tenant list.
    ProfileCountMismatch {
        /// Number of profiles supplied.
        profiles: usize,
        /// Number of tenants in the workload.
        tenants: usize,
    },
    /// No alive GPU can admit an evacuated tenant (migration path): every
    /// surviving device fails the quota-capacity or admission check.
    NoCapacity {
        /// Fleet tenant id of the migrant.
        app: usize,
    },
    /// A fault or migration referenced a device that is already dead or
    /// outside the placed fleet, so there is no state left to recover.
    SourceDead {
        /// The referenced GPU slot.
        gpu: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Unplaceable { request, reason } => {
                write!(f, "request {request} fits no GPU: {reason}")
            }
            PlacementError::FleetTooSmall { needed, available } => {
                write!(f, "placement needs {needed} GPUs, fleet has {available}")
            }
            PlacementError::InvalidQuota { request, quota } => {
                write!(
                    f,
                    "request {request} asks for quota {quota}, outside (0, 1]"
                )
            }
            PlacementError::EmptyWorkload => write!(f, "workload has no tenants to place"),
            PlacementError::ProfileCountMismatch { profiles, tenants } => {
                write!(f, "{profiles} profiles supplied for {tenants} tenants")
            }
            PlacementError::NoCapacity { app } => {
                write!(f, "no alive GPU can admit evacuated tenant {app}")
            }
            PlacementError::SourceDead { gpu } => {
                write!(f, "GPU {gpu} is dead or outside the placed fleet")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// The quota-capacity acceptance threshold: a GPU admits a request only
/// while its provisioned quota stays within `1 + ε` (the ε absorbs float
/// summation noise on quota sets that exactly fill a device).
const QUOTA_LIMIT: f64 = 1.0 + 1e-9;

/// How a request is matched to a GPU among the quota-feasible candidates.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum PlacementPolicy {
    /// Lowest-numbered GPU whose quota headroom and admission check accept
    /// the request (classic first-fit; byte-identical to the pre-index
    /// linear scan, [`place_linear`]).
    #[default]
    FirstFit,
    /// Among the first [`ContentionOpts::top_k`] admissible GPUs, the one
    /// whose predicted bottleneck slowdown after adding the request is
    /// lowest (ties break to the lowest GPU index, so the choice is
    /// deterministic).
    ContentionAware(ContentionOpts),
}

impl PlacementPolicy {
    /// The contention-aware policy with default scoring knobs
    /// (A100-calibrated channel curves, top-8 candidate window).
    pub fn contention_aware() -> Self {
        PlacementPolicy::ContentionAware(ContentionOpts::default())
    }
}

/// Scoring knobs for [`PlacementPolicy::ContentionAware`].
#[derive(Clone, Debug, PartialEq)]
pub struct ContentionOpts {
    /// Per-channel contention curves pricing a candidate co-location.
    pub params: ChannelParams,
    /// How many admissible candidate GPUs (in ascending index order) are
    /// scored before committing. Larger windows find better matches at
    /// higher admission-check cost; 0 is clamped to 1.
    pub top_k: usize,
}

impl Default for ContentionOpts {
    fn default() -> Self {
        ContentionOpts {
            params: ChannelParams::a100(),
            top_k: 8,
        }
    }
}

/// A segment tree over the opened GPUs' provisioned quota, answering
/// "lowest GPU index ≥ `from` that can still take quota `q`" in
/// `O(log n)`. Leaves store each GPU's summed quota (accumulated in
/// member-join order, so the float value is bitwise identical to the
/// linear scan's fresh per-visit sum); internal nodes store the subtree
/// minimum, which prunes fully-packed regions because float addition is
/// monotone in each argument.
pub(crate) struct CapacityIndex {
    /// Leaf capacity (power of two).
    cap: usize,
    /// Opened GPUs.
    len: usize,
    /// 1-based segment tree of subtree-min provisioned quota; unopened
    /// leaves hold `f64::INFINITY` so they never match.
    tree: Vec<f64>,
}

impl CapacityIndex {
    pub(crate) fn with_capacity(expected: usize) -> Self {
        let cap = expected.max(1).next_power_of_two();
        CapacityIndex {
            cap,
            len: 0,
            tree: vec![f64::INFINITY; 2 * cap],
        }
    }

    /// Provisioned quota on GPU `g`.
    pub(crate) fn used(&self, g: usize) -> f64 {
        self.tree[self.cap + g]
    }

    /// Builds an index over an existing fleet snapshot: `used[g]` is GPU
    /// `g`'s provisioned quota (fold member quotas in member-join order
    /// to match the linear scan bitwise), or `f64::INFINITY` for a dead
    /// device, which no query can ever select. The chaos runner uses
    /// this to re-place evacuees without cloning per-host tenant lists.
    pub(crate) fn from_used(used: &[f64]) -> Self {
        let mut idx = CapacityIndex::with_capacity(used.len());
        idx.len = used.len();
        for (g, &u) in used.iter().enumerate() {
            idx.tree[idx.cap + g] = u;
        }
        for i in (1..idx.cap).rev() {
            idx.tree[i] = idx.tree[2 * i].min(idx.tree[2 * i + 1]);
        }
        idx
    }

    fn pull_up(&mut self, leaf: usize) {
        let mut i = (self.cap + leaf) / 2;
        while i >= 1 {
            self.tree[i] = self.tree[2 * i].min(self.tree[2 * i + 1]);
            i /= 2;
        }
    }

    /// Opens a new (empty) GPU and returns its index.
    pub(crate) fn open(&mut self) -> usize {
        if self.len == self.cap {
            // Double the leaf space and rebuild.
            let used: Vec<f64> = (0..self.len).map(|g| self.used(g)).collect();
            self.cap *= 2;
            self.tree = vec![f64::INFINITY; 2 * self.cap];
            for (g, u) in used.into_iter().enumerate() {
                self.tree[self.cap + g] = u;
            }
            for i in (1..self.cap).rev() {
                self.tree[i] = self.tree[2 * i].min(self.tree[2 * i + 1]);
            }
        }
        let g = self.len;
        self.len += 1;
        self.tree[self.cap + g] = 0.0;
        self.pull_up(g);
        g
    }

    /// Adds `quota` to GPU `g`'s provisioned sum (member-join order, so
    /// the accumulated float matches the linear scan's summation).
    pub(crate) fn commit(&mut self, g: usize, quota: f64) {
        self.tree[self.cap + g] += quota;
        self.pull_up(g);
    }

    /// Lowest GPU index ≥ `from` whose provisioned quota still accepts
    /// `quota` (i.e. `used + quota <= 1 + ε`, the exact float expression
    /// the linear scan evaluates).
    pub(crate) fn first_fit_from(&self, from: usize, quota: f64) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        self.descend(1, 0, self.cap, from, quota)
    }

    fn descend(&self, node: usize, lo: usize, hi: usize, from: usize, quota: f64) -> Option<usize> {
        if hi <= from || lo >= self.len {
            return None;
        }
        // Min-used + quota over the limit means every leaf here is over it
        // too (float addition is monotone), so the subtree prunes.
        if self.tree[node] + quota > QUOTA_LIMIT {
            return None;
        }
        if hi - lo == 1 {
            return Some(lo);
        }
        let mid = lo + (hi - lo) / 2;
        self.descend(2 * node, lo, mid, from, quota)
            .or_else(|| self.descend(2 * node + 1, mid, hi, from, quota))
    }
}

/// Validates quotas and produces the FFD visit order (descending memory,
/// ascending index on ties) — shared by every placement path.
fn ffd_order(requests: &[PlacementRequest]) -> Result<Vec<usize>, PlacementError> {
    if requests.is_empty() {
        return Err(PlacementError::EmptyWorkload);
    }
    // A quota outside (0, 1] can never be provisioned: a lone over-quota
    // tenant would otherwise sail through packing and blow up deployment.
    for (ri, req) in requests.iter().enumerate() {
        if !(req.quota > 0.0 && req.quota <= 1.0) {
            return Err(PlacementError::InvalidQuota {
                request: ri,
                quota: req.quota,
            });
        }
    }
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[b]
            .profile
            .memory_mib
            .cmp(&requests[a].profile.memory_mib)
            .then(a.cmp(&b))
    });
    Ok(order)
}

/// Packs `requests` onto at most `fleet_size` GPUs with `memory_mib` each
/// under first-fit decreasing — the indexed fast path, byte-identical to
/// [`place_linear`]. See [`place_with`] for policy selection.
pub fn place(
    requests: &[PlacementRequest],
    fleet_size: usize,
    memory_mib: u64,
    policy: &AdmissionPolicy,
) -> Result<Placement, PlacementError> {
    place_with(
        requests,
        fleet_size,
        memory_mib,
        policy,
        &PlacementPolicy::FirstFit,
    )
}

/// Packs `requests` onto at most `fleet_size` GPUs with `memory_mib` each.
///
/// FFD visit order (descending memory footprint); a request joins a GPU
/// only if
///
/// * the GPU's quota capacity stays ≤ 1,
/// * the co-located set passes the §4.2.2 admission check (memory
///   including per-tenant MPS contexts, kernel-granularity compatibility),
///
/// and among the feasible GPUs the [`PlacementPolicy`] picks the winner:
/// the first (lowest index) under [`PlacementPolicy::FirstFit`], the one
/// minimizing predicted bottleneck slowdown under
/// [`PlacementPolicy::ContentionAware`]. Candidate lookup goes through the
/// `CapacityIndex`, so filling a fleet costs `O(n log n)` in opened GPUs
/// instead of the old `O(n²)` scan.
pub fn place_with(
    requests: &[PlacementRequest],
    fleet_size: usize,
    memory_mib: u64,
    admission: &AdmissionPolicy,
    policy: &PlacementPolicy,
) -> Result<Placement, PlacementError> {
    let order = ffd_order(requests)?;

    // Tenant-level demand aggregates, computed once per request (only the
    // contention policy reads them).
    let demands: Vec<ChannelDemand> = match policy {
        PlacementPolicy::FirstFit => Vec::new(),
        PlacementPolicy::ContentionAware(_) => requests
            .iter()
            .map(|r| aggregate_demand(&r.profile))
            .collect(),
    };

    let mut gpu_members: Vec<Vec<usize>> = Vec::new();
    // Per-GPU channel traffic: sum of member demand × quota, maintained
    // incrementally for the contention score.
    let mut traffic: Vec<[f64; NUM_CHANNELS]> = Vec::new();
    let mut index = CapacityIndex::with_capacity(requests.len().min(1024));
    let mut assignments = vec![usize::MAX; requests.len()];
    // Admission scratch, reused across checks.
    let mut profiles: Vec<&ProfiledApp> = Vec::new();

    for &ri in &order {
        let req = &requests[ri];
        // Can it stand alone at all?
        if let Err(reason) = admit(&[&req.profile], memory_mib, admission) {
            return Err(PlacementError::Unplaceable {
                request: ri,
                reason,
            });
        }
        let chosen = match policy {
            PlacementPolicy::FirstFit => {
                let mut from = 0;
                let mut hit = None;
                while let Some(gi) = index.first_fit_from(from, req.quota) {
                    if admissible(
                        gi,
                        ri,
                        &gpu_members,
                        requests,
                        &mut profiles,
                        memory_mib,
                        admission,
                    ) {
                        hit = Some(gi);
                        break;
                    }
                    from = gi + 1;
                }
                hit
            }
            PlacementPolicy::ContentionAware(opts) => {
                // Gather up to top_k admissible candidates in ascending
                // GPU order, then take the cheapest predicted co-location.
                let top_k = opts.top_k.max(1);
                let mut from = 0;
                let mut best: Option<(f64, usize)> = None;
                let mut seen = 0usize;
                while seen < top_k {
                    let Some(gi) = index.first_fit_from(from, req.quota) else {
                        break;
                    };
                    from = gi + 1;
                    if !admissible(
                        gi,
                        ri,
                        &gpu_members,
                        requests,
                        &mut profiles,
                        memory_mib,
                        admission,
                    ) {
                        continue;
                    }
                    seen += 1;
                    let score = colocation_score(
                        &opts.params,
                        &traffic[gi],
                        &gpu_members[gi],
                        requests,
                        &demands,
                        ri,
                    );
                    // Strict `<` keeps ties on the lowest GPU index.
                    if best.is_none_or(|(b, _)| score < b) {
                        best = Some((score, gi));
                    }
                }
                best.map(|(_, gi)| gi)
            }
        };
        let gi = match chosen {
            Some(gi) => gi,
            None => {
                let gi = index.open();
                gpu_members.push(Vec::new());
                traffic.push([0.0; NUM_CHANNELS]);
                gi
            }
        };
        gpu_members[gi].push(ri);
        assignments[ri] = gi;
        index.commit(gi, req.quota);
        if let Some(d) = demands.get(ri) {
            for (c, t) in traffic[gi].iter_mut().enumerate() {
                *t += d.0[c] * req.quota;
            }
        }
    }

    if gpu_members.len() > fleet_size {
        return Err(PlacementError::FleetTooSmall {
            needed: gpu_members.len(),
            available: fleet_size,
        });
    }
    Ok(Placement {
        assignments,
        gpus_used: gpu_members.len(),
    })
}

/// Would GPU `gi`'s tenancy still pass the §4.2.2 admission check with
/// request `ri` added? `profiles` is reusable scratch.
fn admissible<'a>(
    gi: usize,
    ri: usize,
    gpu_members: &[Vec<usize>],
    requests: &'a [PlacementRequest],
    profiles: &mut Vec<&'a ProfiledApp>,
    memory_mib: u64,
    admission: &AdmissionPolicy,
) -> bool {
    profiles.clear();
    profiles.extend(gpu_members[gi].iter().map(|&m| &*requests[m].profile));
    profiles.push(&requests[ri].profile);
    admit(profiles, memory_mib, admission).is_ok()
}

/// Predicted total slowdown of GPU `gi`'s tenancy after adding request
/// `ri`: the sum over all residents (incumbents plus the newcomer) of
/// their bottleneck-channel slowdown under the combined traffic. Lower is
/// a better co-location.
fn colocation_score(
    params: &ChannelParams,
    resident_traffic: &[f64; NUM_CHANNELS],
    members: &[usize],
    requests: &[PlacementRequest],
    demands: &[ChannelDemand],
    ri: usize,
) -> f64 {
    let mut t = *resident_traffic;
    for (c, tc) in t.iter_mut().enumerate() {
        *tc += demands[ri].0[c] * requests[ri].quota;
    }
    let mut score = params.slowdown(&demands[ri], requests[ri].quota, &t);
    for &m in members {
        score += params.slowdown(&demands[m], requests[m].quota, &t);
    }
    score
}

/// The pre-index linear first-fit scan, retained verbatim as the
/// differential twin: [`place`] (the indexed path) must produce
/// byte-identical placements. Exercised by the placement property tests.
pub fn place_linear(
    requests: &[PlacementRequest],
    fleet_size: usize,
    memory_mib: u64,
    policy: &AdmissionPolicy,
) -> Result<Placement, PlacementError> {
    let order = ffd_order(requests)?;
    let mut gpu_members: Vec<Vec<usize>> = Vec::new();
    let mut assignments = vec![usize::MAX; requests.len()];

    'outer: for &ri in &order {
        let req = &requests[ri];
        if let Err(reason) = admit(&[&req.profile], memory_mib, policy) {
            return Err(PlacementError::Unplaceable {
                request: ri,
                reason,
            });
        }
        for (gi, members) in gpu_members.iter_mut().enumerate() {
            let quota_used: f64 = members.iter().map(|&m| requests[m].quota).sum();
            if quota_used + req.quota > QUOTA_LIMIT {
                continue;
            }
            let mut profiles: Vec<&ProfiledApp> =
                members.iter().map(|&m| &*requests[m].profile).collect();
            profiles.push(&req.profile);
            if admit(&profiles, memory_mib, policy).is_ok() {
                members.push(ri);
                assignments[ri] = gi;
                continue 'outer;
            }
        }
        // Open a new GPU.
        gpu_members.push(vec![ri]);
        assignments[ri] = gpu_members.len() - 1;
    }

    if gpu_members.len() > fleet_size {
        return Err(PlacementError::FleetTooSmall {
            needed: gpu_members.len(),
            available: fleet_size,
        });
    }
    Ok(Placement {
        assignments,
        gpus_used: gpu_members.len(),
    })
}

/// The fleet's predicted bottleneck slowdown under a placement: the mean,
/// over all requests, of each tenant's bottleneck-channel slowdown given
/// its GPU's combined demand×quota traffic. `1.0` means no predicted
/// contention anywhere; the contention-aware policy exists to push this
/// below first-fit's value on the same request set.
pub fn predicted_fleet_slowdown(
    requests: &[PlacementRequest],
    placement: &Placement,
    params: &ChannelParams,
) -> f64 {
    if requests.is_empty() {
        return 1.0;
    }
    let demands: Vec<ChannelDemand> = requests
        .iter()
        .map(|r| aggregate_demand(&r.profile))
        .collect();
    let mut traffic: Vec<[f64; NUM_CHANNELS]> = vec![[0.0; NUM_CHANNELS]; placement.gpus_used];
    for (ri, req) in requests.iter().enumerate() {
        let g = placement.assignments[ri];
        for (c, t) in traffic[g].iter_mut().enumerate() {
            *t += demands[ri].0[c] * req.quota;
        }
    }
    let total: f64 = requests
        .iter()
        .enumerate()
        .map(|(ri, req)| {
            params.slowdown(&demands[ri], req.quota, &traffic[placement.assignments[ri]])
        })
        .sum();
    total / requests.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::{Channel, GpuSpec};

    fn profiled(kind: ModelKind) -> SharedProfile {
        ProfiledApp::profile_shared(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100())
    }

    fn req(kind: ModelKind, quota: f64) -> PlacementRequest {
        PlacementRequest {
            profile: profiled(kind),
            quota,
        }
    }

    #[test]
    fn two_small_tenants_share_one_gpu() {
        let reqs = vec![req(ModelKind::Vgg11, 0.5), req(ModelKind::ResNet50, 0.5)];
        let p = place(&reqs, 4, 40 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 1);
        assert_eq!(p.assignments[0], p.assignments[1]);
    }

    #[test]
    fn quota_capacity_forces_a_second_gpu() {
        let reqs = vec![
            req(ModelKind::Vgg11, 0.7),
            req(ModelKind::ResNet50, 0.7),
            req(ModelKind::Bert, 0.3),
        ];
        let p = place(&reqs, 4, 40 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 2);
        // The two 0.7 tenants cannot share.
        assert_ne!(p.assignments[0], p.assignments[1]);
        // Total quota per GPU stays within 1.
        for g in 0..p.gpus_used {
            let total: f64 = p.tenants_of(g).iter().map(|&i| reqs[i].quota).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn memory_pressure_spreads_tenants() {
        // On a tiny 4 GiB GPU, BERT (1.5 GiB) + VGG (1.25 GiB) + contexts
        // exceed capacity: they must be split across GPUs.
        let reqs = vec![req(ModelKind::Bert, 0.5), req(ModelKind::Vgg11, 0.5)];
        let p = place(&reqs, 4, 4 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 2);
    }

    #[test]
    fn fleet_too_small_is_reported() {
        let reqs = vec![req(ModelKind::Vgg11, 0.9), req(ModelKind::ResNet50, 0.9)];
        let err = place(&reqs, 1, 40 * 1024, &AdmissionPolicy::default()).unwrap_err();
        assert_eq!(
            err,
            PlacementError::FleetTooSmall {
                needed: 2,
                available: 1
            }
        );
    }

    #[test]
    fn unplaceable_tenant_is_reported() {
        let reqs = vec![req(ModelKind::Bert, 0.5)];
        let err = place(&reqs, 4, 512, &AdmissionPolicy::default()).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::Unplaceable { request: 0, .. }
        ));
        assert!(format!("{err}").contains("fits no GPU"));
    }

    #[test]
    fn kernel_compatibility_separates_tenants() {
        // A strict granularity policy forbids co-locating NasNet's short
        // kernels with VGG's long ones: they land on different GPUs.
        let strict = AdmissionPolicy {
            max_mean_kernel_ratio: 1.5,
            ..AdmissionPolicy::default()
        };
        let reqs = vec![req(ModelKind::NasNet, 0.5), req(ModelKind::Vgg11, 0.5)];
        let p = place(&reqs, 4, 40 * 1024, &strict).unwrap();
        assert_eq!(p.gpus_used, 2);
    }

    #[test]
    fn over_quota_request_is_typed() {
        let reqs = vec![req(ModelKind::Vgg11, 1.5)];
        let err = place(&reqs, 4, 40 * 1024, &AdmissionPolicy::default()).unwrap_err();
        assert_eq!(
            err,
            PlacementError::InvalidQuota {
                request: 0,
                quota: 1.5
            }
        );
        assert!(format!("{err}").contains("outside (0, 1]"));
    }

    #[test]
    fn empty_request_set_is_typed() {
        let err = place(&[], 4, 40 * 1024, &AdmissionPolicy::default()).unwrap_err();
        assert_eq!(err, PlacementError::EmptyWorkload);
    }

    #[test]
    fn fleet_of_one_hosts_what_fits() {
        // A degenerate one-GPU fleet is a valid cluster, not an error.
        let reqs = vec![req(ModelKind::Vgg11, 0.5), req(ModelKind::ResNet50, 0.5)];
        let p = place(&reqs, 1, 40 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 1);
        assert_eq!(p.assignments, vec![0, 0]);
    }

    #[test]
    fn placement_requests_share_one_profile_table() {
        // Interning: cloning a request must not deep-copy the profile.
        let r = req(ModelKind::Vgg11, 0.5);
        let r2 = r.clone();
        assert!(std::sync::Arc::ptr_eq(&r.profile, &r2.profile));
    }

    /// A tenant whose kernels all carry the same demand vector — the
    /// knob for contention-scoring tests.
    fn demand_req(name: &str, quota: f64, demand: ChannelDemand) -> PlacementRequest {
        use dnn_models::micro;
        use sim_core::SimDuration;
        let model = AppModel {
            kind: ModelKind::Vgg11,
            phase: Phase::Inference,
            name: name.to_owned(),
            kernels: (0..4)
                .map(|_| micro::channel_victim(SimDuration::from_micros(500), 54, demand))
                .collect(),
            memory_mib: 1024,
        };
        PlacementRequest {
            profile: ProfiledApp::profile_shared(&model, &GpuSpec::a100_per_resource()),
            quota,
        }
    }

    #[test]
    fn indexed_first_fit_matches_linear_scan() {
        let policy = AdmissionPolicy::default();
        // Mixed models, quotas that fragment, and a tight-memory variant
        // that forces admission rejections mid-scan.
        let fixtures: Vec<(Vec<PlacementRequest>, u64)> = vec![
            (
                vec![
                    req(ModelKind::Vgg11, 0.7),
                    req(ModelKind::ResNet50, 0.7),
                    req(ModelKind::Bert, 0.3),
                    req(ModelKind::ResNet101, 0.3),
                    req(ModelKind::Vgg11, 0.5),
                    req(ModelKind::Bert, 0.5),
                ],
                40 * 1024,
            ),
            (
                vec![
                    req(ModelKind::Bert, 0.5),
                    req(ModelKind::Vgg11, 0.5),
                    req(ModelKind::ResNet50, 0.25),
                    req(ModelKind::ResNet101, 0.25),
                ],
                4 * 1024,
            ),
            (
                (0..24)
                    .map(|i| {
                        let kinds = [ModelKind::Vgg11, ModelKind::ResNet50, ModelKind::Bert];
                        req(kinds[i % kinds.len()], [0.6, 0.4, 0.25, 0.15][i % 4])
                    })
                    .collect(),
                40 * 1024,
            ),
        ];
        for (reqs, mem) in fixtures {
            let indexed = place(&reqs, 64, mem, &policy).unwrap();
            let linear = place_linear(&reqs, 64, mem, &policy).unwrap();
            assert_eq!(indexed, linear);
        }
    }

    #[test]
    fn capacity_index_grows_past_initial_capacity() {
        // 9 full-quota tenants against an index sized for 4: open() must
        // rebuild and keep answering correctly.
        let mut idx = CapacityIndex::with_capacity(4);
        for g in 0..9 {
            assert_eq!(idx.open(), g);
            idx.commit(g, 1.0);
        }
        assert_eq!(idx.first_fit_from(0, 0.5), None);
        let g = idx.open();
        assert_eq!(idx.first_fit_from(0, 0.5), Some(g));
        assert_eq!(idx.used(g), 0.0);
    }

    #[test]
    fn contention_aware_pairs_complementary_tenants() {
        let heavy = ChannelDemand::collapsed(Channel::DramBw, 0.9);
        let light = ChannelDemand::new(0.2, 0.05, 0.0, 0.0);
        // 0.6-quota tenants open two GPUs; the 0.4 stragglers then have a
        // real choice between them.
        let reqs = vec![
            demand_req("heavy-a", 0.6, heavy),
            demand_req("light-a", 0.6, light),
            demand_req("heavy-b", 0.4, heavy),
            demand_req("light-b", 0.4, light),
        ];
        let policy = AdmissionPolicy::default();
        let ff = place(&reqs, 4, 40 * 1024, &policy).unwrap();
        let ca = place_with(
            &reqs,
            4,
            40 * 1024,
            &policy,
            &PlacementPolicy::contention_aware(),
        )
        .unwrap();
        // First-fit doubles up the DRAM-heavy pair; contention-aware
        // crosses them with the light tenants instead.
        assert_eq!(ff.assignments[0], ff.assignments[2]);
        assert_ne!(ca.assignments[0], ca.assignments[2]);
        let params = ChannelParams::a100();
        let ff_cost = predicted_fleet_slowdown(&reqs, &ff, &params);
        let ca_cost = predicted_fleet_slowdown(&reqs, &ca, &params);
        assert!(
            ca_cost < ff_cost,
            "contention-aware {ca_cost} should beat first-fit {ff_cost}"
        );
    }

    #[test]
    fn contention_aware_is_deterministic() {
        let reqs: Vec<PlacementRequest> = (0..16)
            .map(|i| {
                let d = if i % 3 == 0 {
                    ChannelDemand::collapsed(Channel::DramBw, 0.8)
                } else {
                    ChannelDemand::new(0.3, 0.1, 0.1, 0.0)
                };
                demand_req(&format!("t{i}"), [0.5, 0.25, 0.35][i % 3], d)
            })
            .collect();
        let policy = AdmissionPolicy::default();
        let a = place_with(
            &reqs,
            64,
            40 * 1024,
            &policy,
            &PlacementPolicy::contention_aware(),
        )
        .unwrap();
        let b = place_with(
            &reqs,
            64,
            40 * 1024,
            &policy,
            &PlacementPolicy::contention_aware(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lone_tenants_predict_no_slowdown() {
        // One tenant per GPU: each GPU's traffic is the tenant's own, so
        // cross-pressure is zero and the fleet prediction is exactly 1.
        let reqs = vec![
            demand_req(
                "solo-a",
                1.0,
                ChannelDemand::collapsed(Channel::DramBw, 0.9),
            ),
            demand_req(
                "solo-b",
                1.0,
                ChannelDemand::collapsed(Channel::Compute, 0.7),
            ),
        ];
        let p = place(&reqs, 4, 40 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 2);
        let s = predicted_fleet_slowdown(&reqs, &p, &ChannelParams::a100());
        assert_eq!(s, 1.0);
    }
}
