//! The central placement controller.

use profiler::{admit, AdmissionError, AdmissionPolicy, ProfiledApp, SharedProfile};

/// One application asking to be placed.
///
/// The profile is held through a [`SharedProfile`] handle: the controller,
/// the per-GPU deployments, and the caller's own copy all reference one
/// interned kernel table instead of deep-copying it at every layer.
#[derive(Clone, Debug)]
pub struct PlacementRequest {
    /// Offline profile (provides memory needs and kernel statistics).
    pub profile: SharedProfile,
    /// Requested GPU quota in `(0, 1]`.
    pub quota: f64,
}

/// A computed placement: `assignments[i]` is the GPU index of request `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// GPU index per request, aligned with the input order.
    pub assignments: Vec<usize>,
    /// Number of GPUs actually used.
    pub gpus_used: usize,
}

impl Placement {
    /// The request indices placed on `gpu`.
    pub fn tenants_of(&self, gpu: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g == gpu)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Why the fleet could not host the request set.
#[derive(Clone, Debug, PartialEq)]
pub enum PlacementError {
    /// A single request cannot fit on any empty GPU.
    Unplaceable {
        /// Index of the offending request.
        request: usize,
        /// The admission failure on an empty GPU.
        reason: AdmissionError,
    },
    /// More GPUs are needed than the fleet has.
    FleetTooSmall {
        /// GPUs required by the computed packing.
        needed: usize,
        /// GPUs available.
        available: usize,
    },
    /// A request's quota is outside `(0, 1]` (so it cannot be provisioned
    /// on any single GPU, not even an empty one).
    InvalidQuota {
        /// Index of the offending request.
        request: usize,
        /// The requested quota.
        quota: f64,
    },
    /// The workload has no tenants — there is nothing to place.
    EmptyWorkload,
    /// The profile list does not align with the tenant list.
    ProfileCountMismatch {
        /// Number of profiles supplied.
        profiles: usize,
        /// Number of tenants in the workload.
        tenants: usize,
    },
    /// No alive GPU can admit an evacuated tenant (migration path): every
    /// surviving device fails the quota-capacity or admission check.
    NoCapacity {
        /// Fleet tenant id of the migrant.
        app: usize,
    },
    /// A fault or migration referenced a device that is already dead or
    /// outside the placed fleet, so there is no state left to recover.
    SourceDead {
        /// The referenced GPU slot.
        gpu: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Unplaceable { request, reason } => {
                write!(f, "request {request} fits no GPU: {reason}")
            }
            PlacementError::FleetTooSmall { needed, available } => {
                write!(f, "placement needs {needed} GPUs, fleet has {available}")
            }
            PlacementError::InvalidQuota { request, quota } => {
                write!(
                    f,
                    "request {request} asks for quota {quota}, outside (0, 1]"
                )
            }
            PlacementError::EmptyWorkload => write!(f, "workload has no tenants to place"),
            PlacementError::ProfileCountMismatch { profiles, tenants } => {
                write!(f, "{profiles} profiles supplied for {tenants} tenants")
            }
            PlacementError::NoCapacity { app } => {
                write!(f, "no alive GPU can admit evacuated tenant {app}")
            }
            PlacementError::SourceDead { gpu } => {
                write!(f, "GPU {gpu} is dead or outside the placed fleet")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Packs `requests` onto at most `fleet_size` GPUs with `memory_mib` each.
///
/// First-fit decreasing by memory footprint; a request joins a GPU only if
///
/// * the GPU's quota capacity stays ≤ 1,
/// * the co-located set passes the §4.2.2 admission check (memory
///   including per-tenant MPS contexts, kernel-granularity compatibility).
pub fn place(
    requests: &[PlacementRequest],
    fleet_size: usize,
    memory_mib: u64,
    policy: &AdmissionPolicy,
) -> Result<Placement, PlacementError> {
    if requests.is_empty() {
        return Err(PlacementError::EmptyWorkload);
    }
    // A quota outside (0, 1] can never be provisioned: a lone over-quota
    // tenant would otherwise sail through packing and blow up deployment.
    for (ri, req) in requests.iter().enumerate() {
        if !(req.quota > 0.0 && req.quota <= 1.0) {
            return Err(PlacementError::InvalidQuota {
                request: ri,
                quota: req.quota,
            });
        }
    }

    // Sort indices by descending memory need (classic FFD).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[b]
            .profile
            .memory_mib
            .cmp(&requests[a].profile.memory_mib)
            .then(a.cmp(&b))
    });

    let mut gpu_members: Vec<Vec<usize>> = Vec::new();
    let mut assignments = vec![usize::MAX; requests.len()];

    'outer: for &ri in &order {
        let req = &requests[ri];
        // Can it stand alone at all?
        if let Err(reason) = admit(&[&req.profile], memory_mib, policy) {
            return Err(PlacementError::Unplaceable {
                request: ri,
                reason,
            });
        }
        for (gi, members) in gpu_members.iter_mut().enumerate() {
            let quota_used: f64 = members.iter().map(|&m| requests[m].quota).sum();
            if quota_used + req.quota > 1.0 + 1e-9 {
                continue;
            }
            let mut profiles: Vec<&ProfiledApp> =
                members.iter().map(|&m| &*requests[m].profile).collect();
            profiles.push(&req.profile);
            if admit(&profiles, memory_mib, policy).is_ok() {
                members.push(ri);
                assignments[ri] = gi;
                continue 'outer;
            }
        }
        // Open a new GPU.
        gpu_members.push(vec![ri]);
        assignments[ri] = gpu_members.len() - 1;
    }

    if gpu_members.len() > fleet_size {
        return Err(PlacementError::FleetTooSmall {
            needed: gpu_members.len(),
            available: fleet_size,
        });
    }
    Ok(Placement {
        assignments,
        gpus_used: gpu_members.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{AppModel, ModelKind, Phase};
    use gpu_sim::GpuSpec;

    fn profiled(kind: ModelKind) -> SharedProfile {
        ProfiledApp::profile_shared(&AppModel::build(kind, Phase::Inference), &GpuSpec::a100())
    }

    fn req(kind: ModelKind, quota: f64) -> PlacementRequest {
        PlacementRequest {
            profile: profiled(kind),
            quota,
        }
    }

    #[test]
    fn two_small_tenants_share_one_gpu() {
        let reqs = vec![req(ModelKind::Vgg11, 0.5), req(ModelKind::ResNet50, 0.5)];
        let p = place(&reqs, 4, 40 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 1);
        assert_eq!(p.assignments[0], p.assignments[1]);
    }

    #[test]
    fn quota_capacity_forces_a_second_gpu() {
        let reqs = vec![
            req(ModelKind::Vgg11, 0.7),
            req(ModelKind::ResNet50, 0.7),
            req(ModelKind::Bert, 0.3),
        ];
        let p = place(&reqs, 4, 40 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 2);
        // The two 0.7 tenants cannot share.
        assert_ne!(p.assignments[0], p.assignments[1]);
        // Total quota per GPU stays within 1.
        for g in 0..p.gpus_used {
            let total: f64 = p.tenants_of(g).iter().map(|&i| reqs[i].quota).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn memory_pressure_spreads_tenants() {
        // On a tiny 4 GiB GPU, BERT (1.5 GiB) + VGG (1.25 GiB) + contexts
        // exceed capacity: they must be split across GPUs.
        let reqs = vec![req(ModelKind::Bert, 0.5), req(ModelKind::Vgg11, 0.5)];
        let p = place(&reqs, 4, 4 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 2);
    }

    #[test]
    fn fleet_too_small_is_reported() {
        let reqs = vec![req(ModelKind::Vgg11, 0.9), req(ModelKind::ResNet50, 0.9)];
        let err = place(&reqs, 1, 40 * 1024, &AdmissionPolicy::default()).unwrap_err();
        assert_eq!(
            err,
            PlacementError::FleetTooSmall {
                needed: 2,
                available: 1
            }
        );
    }

    #[test]
    fn unplaceable_tenant_is_reported() {
        let reqs = vec![req(ModelKind::Bert, 0.5)];
        let err = place(&reqs, 4, 512, &AdmissionPolicy::default()).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::Unplaceable { request: 0, .. }
        ));
        assert!(format!("{err}").contains("fits no GPU"));
    }

    #[test]
    fn kernel_compatibility_separates_tenants() {
        // A strict granularity policy forbids co-locating NasNet's short
        // kernels with VGG's long ones: they land on different GPUs.
        let strict = AdmissionPolicy {
            max_mean_kernel_ratio: 1.5,
            ..AdmissionPolicy::default()
        };
        let reqs = vec![req(ModelKind::NasNet, 0.5), req(ModelKind::Vgg11, 0.5)];
        let p = place(&reqs, 4, 40 * 1024, &strict).unwrap();
        assert_eq!(p.gpus_used, 2);
    }

    #[test]
    fn over_quota_request_is_typed() {
        let reqs = vec![req(ModelKind::Vgg11, 1.5)];
        let err = place(&reqs, 4, 40 * 1024, &AdmissionPolicy::default()).unwrap_err();
        assert_eq!(
            err,
            PlacementError::InvalidQuota {
                request: 0,
                quota: 1.5
            }
        );
        assert!(format!("{err}").contains("outside (0, 1]"));
    }

    #[test]
    fn empty_request_set_is_typed() {
        let err = place(&[], 4, 40 * 1024, &AdmissionPolicy::default()).unwrap_err();
        assert_eq!(err, PlacementError::EmptyWorkload);
    }

    #[test]
    fn fleet_of_one_hosts_what_fits() {
        // A degenerate one-GPU fleet is a valid cluster, not an error.
        let reqs = vec![req(ModelKind::Vgg11, 0.5), req(ModelKind::ResNet50, 0.5)];
        let p = place(&reqs, 1, 40 * 1024, &AdmissionPolicy::default()).unwrap();
        assert_eq!(p.gpus_used, 1);
        assert_eq!(p.assignments, vec![0, 0]);
    }

    #[test]
    fn placement_requests_share_one_profile_table() {
        // Interning: cloning a request must not deep-copy the profile.
        let r = req(ModelKind::Vgg11, 0.5);
        let r2 = r.clone();
        assert!(std::sync::Arc::ptr_eq(&r.profile, &r2.profile));
    }
}
