//! Property tests on the placement controller.

use cluster::{place, place_linear, place_with, PlacementPolicy, PlacementRequest};
use dnn_models::{AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use profiler::{AdmissionPolicy, ProfiledApp, SharedProfile};
use proptest::prelude::*;
use std::sync::OnceLock;

fn profiles() -> &'static Vec<SharedProfile> {
    static CACHE: OnceLock<Vec<SharedProfile>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let spec = GpuSpec::a100();
        [
            ModelKind::Vgg11,
            ModelKind::ResNet50,
            ModelKind::ResNet101,
            ModelKind::Bert,
        ]
        .iter()
        .map(|&k| ProfiledApp::profile_shared(&AppModel::build(k, Phase::Inference), &spec))
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A successful placement assigns every request exactly once, never
    /// oversubscribes a GPU's quota, and never exceeds device memory
    /// (including the per-tenant MPS contexts).
    #[test]
    fn prop_placements_are_sound(
        specs in proptest::collection::vec((0usize..4, 1u32..=10), 1..10),
    ) {
        let reqs: Vec<PlacementRequest> = specs
            .iter()
            .map(|&(m, q)| PlacementRequest {
                profile: profiles()[m].clone(),
                quota: q as f64 / 10.0,
            })
            .collect();
        let policy = AdmissionPolicy::default();
        let Ok(p) = place(&reqs, 16, 40 * 1024, &policy) else {
            // Rejections are allowed; soundness is about acceptances.
            return Ok(());
        };
        prop_assert!(p.assignments.iter().all(|&g| g < p.gpus_used));
        for g in 0..p.gpus_used {
            let members = p.tenants_of(g);
            prop_assert!(!members.is_empty(), "no empty GPUs in the packing");
            let quota: f64 = members.iter().map(|&i| reqs[i].quota).sum();
            prop_assert!(quota <= 1.0 + 1e-9, "GPU {g} quota {quota}");
            let mem: u64 = members
                .iter()
                .map(|&i| {
                    reqs[i].profile.memory_mib
                        + policy.contexts_per_app * policy.mib_per_context
                })
                .sum();
            prop_assert!(mem <= 40 * 1024, "GPU {g} memory {mem}");
        }
    }

    /// Placement is monotone in fleet size: if it fits on N GPUs it fits
    /// on N+1, with an identical packing.
    #[test]
    fn prop_fleet_size_monotone(
        specs in proptest::collection::vec((0usize..4, 1u32..=10), 1..8),
        fleet in 1usize..6,
    ) {
        let reqs: Vec<PlacementRequest> = specs
            .iter()
            .map(|&(m, q)| PlacementRequest {
                profile: profiles()[m].clone(),
                quota: q as f64 / 10.0,
            })
            .collect();
        let policy = AdmissionPolicy::default();
        if let Ok(p1) = place(&reqs, fleet, 40 * 1024, &policy) {
            let p2 = place(&reqs, fleet + 1, 40 * 1024, &policy).expect("larger fleet fits");
            prop_assert_eq!(p1, p2);
        }
    }

    /// Differential twin: the segment-tree capacity index must reproduce
    /// the retired linear scan exactly — same packing on success, same
    /// typed error on rejection — for any request mix and fleet size.
    #[test]
    fn prop_indexed_first_fit_matches_linear_scan(
        specs in proptest::collection::vec((0usize..4, 1u32..=10), 1..40),
        fleet in 1usize..32,
    ) {
        let reqs: Vec<PlacementRequest> = specs
            .iter()
            .map(|&(m, q)| PlacementRequest {
                profile: profiles()[m].clone(),
                quota: q as f64 / 10.0,
            })
            .collect();
        let policy = AdmissionPolicy::default();
        let indexed = place(&reqs, fleet, 40 * 1024, &policy);
        let linear = place_linear(&reqs, fleet, 40 * 1024, &policy);
        prop_assert_eq!(indexed, linear);
    }

    /// Contention-aware placement is a pure function of its inputs
    /// (identical packing on repeated runs — the scoring loop has no
    /// hidden iteration-order dependence) and every packing it accepts is
    /// sound under the same quota rule first-fit obeys.
    #[test]
    fn prop_contention_aware_is_deterministic_and_sound(
        specs in proptest::collection::vec((0usize..4, 1u32..=10), 1..24),
        fleet in 1usize..16,
    ) {
        let reqs: Vec<PlacementRequest> = specs
            .iter()
            .map(|&(m, q)| PlacementRequest {
                profile: profiles()[m].clone(),
                quota: q as f64 / 10.0,
            })
            .collect();
        let policy = AdmissionPolicy::default();
        let ca = PlacementPolicy::contention_aware();
        let p1 = place_with(&reqs, fleet, 40 * 1024, &policy, &ca);
        let p2 = place_with(&reqs, fleet, 40 * 1024, &policy, &ca);
        prop_assert_eq!(&p1, &p2);
        let Ok(p) = p1 else { return Ok(()) };
        prop_assert!(p.assignments.iter().all(|&g| g < p.gpus_used));
        for g in 0..p.gpus_used {
            let quota: f64 = p.tenants_of(g).iter().map(|&i| reqs[i].quota).sum();
            prop_assert!(quota <= 1.0 + 1e-9, "GPU {g} quota {quota}");
        }
    }
}
