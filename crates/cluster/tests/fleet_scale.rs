//! 10k-GPU smoke: the sharded streaming runner at full fleet width with
//! minimal per-GPU work, pinned to a golden digest.
//!
//! One single-tenant micro app per device (quota 1.0, two one-kernel
//! requests) keeps the event volume tiny even in debug builds while
//! still exercising the full fast path — indexed placement over 10,000
//! requests, the work-stealing shard pool, and the streaming fold —
//! at worker counts 1 and 4. The pinned digest catches any behavioral
//! drift in that path; the cross-worker equality catches nondeterminism.

use cluster::{run_cluster_stream, ClusterOptions, FleetSummary};
use dnn_models::{micro, AppModel, ModelKind, Phase};
use gpu_sim::GpuSpec;
use profiler::ProfiledApp;
use sim_core::{SimDuration, SimTime};
use workloads::{ArrivalPattern, TenantSpec, WorkloadSet};

const GPUS: usize = 10_000;

/// Golden fleet digest for the seeded 10k-GPU smoke run below.
const GOLDEN_10K_DIGEST: u64 = 0x0ec5_96af_01ff_9800;

fn smoke_run(workers: usize) -> FleetSummary {
    let spec = GpuSpec::a100();
    let model = AppModel {
        kind: ModelKind::Vgg11,
        phase: Phase::Inference,
        name: "fleet-smoke".into(),
        kernels: vec![micro::compute_bound(SimDuration::from_micros(200), 54)],
        memory_mib: 512,
    };
    let profile = ProfiledApp::profile_shared(&model, &spec);
    let tenants: Vec<TenantSpec> = (0..GPUS)
        .map(|i| {
            TenantSpec::new(
                model.clone(),
                1.0,
                ArrivalPattern::Periodic {
                    period: SimDuration::from_millis(1),
                    count: 2,
                    offset: SimDuration::from_micros((i % 97) as u64),
                },
            )
        })
        .collect();
    let profiles = vec![profile; GPUS];
    run_cluster_stream(
        &WorkloadSet { tenants, seed: 99 },
        profiles,
        GPUS,
        &spec,
        &bless::BlessParams::default(),
        SimTime::from_secs(5),
        &ClusterOptions {
            parallel: workers > 1,
            workers: Some(workers),
            ..ClusterOptions::default()
        },
    )
    .expect("10k fleet placement")
}

#[test]
fn ten_thousand_gpu_smoke_digest_is_pinned() {
    let seq = smoke_run(1);
    assert_eq!(seq.completed_gpus, GPUS);
    assert_eq!(seq.arrived_requests, 2 * GPUS as u64);
    assert!(seq.all_completed(), "all requests must finish by horizon");
    let par = smoke_run(4);
    assert_eq!(seq, par, "streamed summary must not depend on workers");
    assert_eq!(
        seq.digest, GOLDEN_10K_DIGEST,
        "10k-GPU fleet digest drifted (got {:#018x})",
        seq.digest
    );
}
